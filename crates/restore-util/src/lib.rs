//! Shared utilities: a deterministic, order-preserving parallel map over a
//! small worker pool, stable seed derivation for per-batch RNGs, and a tiny
//! JSON writer for experiment artifacts.
//!
//! Both the evaluation harness (independent experiment cells) and the core
//! completion engine (batched autoregressive sampling) fan work out over
//! threads; keeping the combinators here means one implementation with one
//! determinism contract: results are a pure function of the inputs and the
//! seeds, never of scheduling.

pub mod backoff;
pub mod fsio;
pub mod json;
pub mod pool;
pub mod ratelimit;
pub mod shutdown;
pub mod singleflight;

pub use backoff::BackoffConfig;
pub use fsio::{fnv1a64, is_tmp_name, write_atomic, Fnv64};
pub use pool::{HealthState, ObjectPool, PoolStats};
pub use ratelimit::{RateLimitConfig, RateLimiter};
pub use shutdown::{ConnectionGuard, Shutdown};
pub use singleflight::{Flight, SingleFlight};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `jobs` on up to `available_parallelism()` threads,
/// preserving input order.
pub fn parallel_map<J, T, F>(jobs: Vec<J>, f: F) -> Vec<T>
where
    J: Send + Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    let workers = default_workers().min(jobs.len().max(1));
    parallel_map_workers(jobs, workers, f)
}

/// The default worker count: one per available hardware thread.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
}

/// [`parallel_map`] with an explicit worker count. `workers <= 1` runs
/// inline on the calling thread.
pub fn parallel_map_workers<J, T, F>(jobs: Vec<J>, workers: usize, f: F) -> Vec<T>
where
    J: Send + Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    let mut scratch = vec![(); workers.min(jobs.len()).max(1)];
    parallel_map_with(jobs, &mut scratch, |_, j| f(j))
}

/// Order-preserving parallel map where every worker owns a reusable
/// scratch object for the duration of the call — and, because the caller
/// supplies the scratch slice, across *calls* too.
///
/// One worker thread is spawned per `scratch` element (capped at the job
/// count); each worker pulls jobs off a shared counter and runs
/// `f(&mut scratch_i, &job)`. The scratch a job lands on is a scheduling
/// accident, so `f` must not let results depend on scratch *contents* —
/// scratch is for reusable capacity (tapes, sessions, buffers), not state.
/// With a single scratch slot the whole map runs inline on the caller.
///
/// This is what lets the training engine keep one arena tape per worker
/// and the completion engine one `InferenceSession` per worker, both warm
/// across batches.
pub fn parallel_map_with<J, T, S, F>(jobs: Vec<J>, scratch: &mut [S], f: F) -> Vec<T>
where
    J: Send + Sync,
    T: Send,
    S: Send,
    F: Fn(&mut S, &J) -> T + Sync,
{
    assert!(
        !scratch.is_empty(),
        "parallel_map_with needs at least one scratch slot"
    );
    if scratch.len() == 1 || jobs.len() <= 1 {
        let s = &mut scratch[0];
        return jobs.iter().map(|j| f(s, j)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let n_jobs = jobs.len();
    {
        let (next, slots, jobs, f) = (&next, &slots, &jobs, &f);
        std::thread::scope(|scope| {
            for s in scratch.iter_mut().take(n_jobs) {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    *slots[i].lock().unwrap() = Some(f(s, job));
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// Derives an independent RNG seed for work unit `index` of a computation
/// seeded with `base` (SplitMix64 finalizer). Every batch of a batched
/// sampler gets its own stream, so the sampled values do not depend on how
/// rows are grouped onto threads — only on `(base, index)`.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<u64> = (0..50).collect();
        let out = parallel_map(jobs, |&j| j * 2);
        assert_eq!(out, (0..50).map(|j| j * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(empty, |&j: &u32| j).is_empty());
        assert_eq!(parallel_map(vec![7u32], |&j| j + 1), vec![8]);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let jobs: Vec<u64> = (0..64).collect();
        let a = parallel_map_workers(jobs.clone(), 1, |&j| derive_seed(42, j));
        let b = parallel_map_workers(jobs.clone(), 4, |&j| derive_seed(42, j));
        let c = parallel_map_workers(jobs, 16, |&j| derive_seed(42, j));
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn with_scratch_preserves_order_and_reuses_state() {
        // Scratch is a counter: each worker reuses its own across jobs, so
        // the counters sum to the job count while results stay in order.
        let jobs: Vec<u64> = (0..40).collect();
        let mut scratch = vec![0usize; 4];
        let out = parallel_map_with(jobs, &mut scratch, |s, &j| {
            *s += 1;
            j * 3
        });
        assert_eq!(out, (0..40).map(|j| j * 3).collect::<Vec<u64>>());
        assert_eq!(scratch.iter().sum::<usize>(), 40);
    }

    #[test]
    fn with_scratch_is_invariant_to_scratch_count() {
        let jobs: Vec<u64> = (0..32).collect();
        let mut one = vec![(); 1];
        let mut four = vec![(); 4];
        let a = parallel_map_with(jobs.clone(), &mut one, |_, &j| derive_seed(3, j));
        let b = parallel_map_with(jobs, &mut four, |_, &j| derive_seed(3, j));
        assert_eq!(a, b);
    }

    #[test]
    fn with_scratch_persists_across_calls() {
        let mut scratch = vec![Vec::<u64>::new(); 2];
        for round in 0..3u64 {
            let jobs: Vec<u64> = (0..8).collect();
            parallel_map_with(jobs, &mut scratch, |s, &j| s.push(round * 100 + j));
        }
        let total: usize = scratch.iter().map(Vec::len).sum();
        assert_eq!(total, 24, "scratch state should survive across calls");
    }

    #[test]
    fn derive_seed_separates_indices_and_bases() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }
}
