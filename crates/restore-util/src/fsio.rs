//! Durable file primitives for the snapshot persistence path: a streaming
//! FNV-1a 64 checksum and an atomic write-rename.
//!
//! The on-disk snapshot format (restore-core's `persist`) frames a file as
//! `payload ++ fnv1a64(payload)`; the serving layer writes such files with
//! [`write_atomic`] so a reader can never observe a half-written snapshot:
//! either the old file, the new file, or (after a crash inside the write)
//! a leftover `*.tmp-*` file that boot scans ignore.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 checksum. Fast, dependency-free, and good enough to
/// catch the failure modes persistence cares about (truncation, bit flips,
/// torn writes) — this is corruption *detection*, not an adversarial MAC.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// FNV-1a 64 of a byte slice in one call.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// The suffix marker of in-progress atomic writes; scanners must skip any
/// file whose name contains it (a crash between write and rename leaves
/// one behind).
pub const TMP_MARKER: &str = ".tmp-";

/// True when `name` is a leftover (or in-flight) atomic-write temp file.
pub fn is_tmp_name(name: &str) -> bool {
    name.contains(TMP_MARKER)
}

/// Writes `bytes` to `path` atomically and durably:
///
/// 1. write to `path.tmp-<pid>` in the same directory,
/// 2. fsync the temp file (data hits the disk before the name does),
/// 3. rename over `path` (atomic on POSIX: readers see old xor new),
/// 4. fsync the directory (the rename itself is durable).
///
/// A crash at any point leaves either the previous `path` content intact
/// or a `*.tmp-*` leftover that [`is_tmp_name`] identifies for skipping.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp: PathBuf = match dir {
        Some(d) => d.join(format!("{file_name}{TMP_MARKER}{}", std::process::id())),
        None => PathBuf::from(format!("{file_name}{TMP_MARKER}{}", std::process::id())),
    };
    let result = (|| {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(d) = dir {
            // Directory fsync makes the rename durable; some filesystems
            // refuse to open directories for writing, so open read-only.
            File::open(d)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        // Best-effort cleanup; the scan-side tmp filter covers the rest.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Fnv64::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv1a64(data));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("restore-fsio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        write_atomic(&path, b"v1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        write_atomic(&path, b"v2-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v2-longer");
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| is_tmp_name(n))
            .collect();
        assert!(leftovers.is_empty(), "tmp leftovers: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_names_are_recognized() {
        assert!(is_tmp_name("v0001.snap.tmp-1234"));
        assert!(!is_tmp_name("v0001.snap"));
    }
}
