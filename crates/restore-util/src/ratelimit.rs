//! Per-key token-bucket rate limiting — the ingress-plane primitive behind
//! `restore-serve`'s per-tenant 429s.
//!
//! Each key (a tenant name, in the server) owns one bucket of `burst`
//! tokens refilled continuously at `rate_per_s`. A request takes one token;
//! an empty bucket refuses with the exact [`Duration`] until the next token
//! materializes, which the server rounds up into an HTTP `Retry-After`.
//!
//! Time is injected: every decision goes through [`RateLimiter::try_acquire_at`]
//! with a caller-supplied nanosecond timestamp on the limiter's own
//! monotonic axis, so tests drive the clock deterministically and the
//! convenience form [`RateLimiter::try_acquire`] just feeds it the wall
//! clock. Buckets are created lazily on first sight of a key — callers
//! should only pass keys from a bounded namespace (the server resolves the
//! tenant against the registry first, so unknown tenant names 404 before
//! they can grow the map).

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Steady-state rate and burst capacity shared by every key's bucket.
#[derive(Clone, Copy, Debug)]
pub struct RateLimitConfig {
    /// Tokens refilled per second (sustained requests/s per key).
    pub rate_per_s: f64,
    /// Bucket capacity: how many requests a key may burst above the
    /// sustained rate. A fresh bucket starts full.
    pub burst: f64,
}

impl RateLimitConfig {
    pub fn new(rate_per_s: f64, burst: f64) -> Self {
        assert!(
            rate_per_s > 0.0 && burst >= 1.0,
            "rate limit needs a positive rate and a burst of at least one"
        );
        Self { rate_per_s, burst }
    }
}

struct Bucket {
    tokens: f64,
    /// Refill high-water mark on the limiter's nanosecond axis.
    last_nanos: u64,
}

/// A keyed token-bucket rate limiter; all keys share one [`RateLimitConfig`].
pub struct RateLimiter {
    config: RateLimitConfig,
    anchor: Instant,
    buckets: Mutex<BTreeMap<String, Bucket>>,
}

impl RateLimiter {
    pub fn new(config: RateLimitConfig) -> Self {
        Self {
            config,
            anchor: Instant::now(),
            buckets: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn config(&self) -> RateLimitConfig {
        self.config
    }

    /// Takes one token from `key`'s bucket at the current wall-clock time.
    /// On refusal, returns the time until a token will be available.
    pub fn try_acquire(&self, key: &str) -> Result<(), Duration> {
        self.try_acquire_at(key, self.anchor.elapsed().as_nanos() as u64)
    }

    /// [`RateLimiter::try_acquire`] at an explicit nanosecond timestamp —
    /// the deterministic form the unit tests drive. Timestamps must be
    /// monotone per key for the refill accounting to make sense; a stale
    /// timestamp simply refills nothing.
    pub fn try_acquire_at(&self, key: &str, now_nanos: u64) -> Result<(), Duration> {
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: self.config.burst,
            last_nanos: now_nanos,
        });
        let elapsed_s = now_nanos.saturating_sub(bucket.last_nanos) as f64 / 1e9;
        bucket.tokens = (bucket.tokens + elapsed_s * self.config.rate_per_s).min(self.config.burst);
        bucket.last_nanos = bucket.last_nanos.max(now_nanos);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err(Duration::from_secs_f64(deficit / self.config.rate_per_s))
        }
    }

    /// Keys with live buckets (for introspection/metrics).
    pub fn keys(&self) -> Vec<String> {
        self.buckets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_then_refuse_then_refill() {
        let rl = RateLimiter::new(RateLimitConfig::new(1.0, 2.0));
        assert!(rl.try_acquire_at("t", 0).is_ok());
        assert!(rl.try_acquire_at("t", 0).is_ok(), "burst of two");
        let wait = rl.try_acquire_at("t", 0).expect_err("bucket empty");
        assert!(
            (wait.as_secs_f64() - 1.0).abs() < 1e-6,
            "one token at 1/s is one second away, got {wait:?}"
        );
        // Half a second later: still short, wait shrinks accordingly.
        let wait = rl.try_acquire_at("t", SEC / 2).expect_err("still empty");
        assert!((wait.as_secs_f64() - 0.5).abs() < 1e-6, "got {wait:?}");
        // After the refill interval the token is back.
        assert!(rl.try_acquire_at("t", SEC).is_ok());
        assert!(rl.try_acquire_at("t", SEC).is_err(), "only one refilled");
    }

    #[test]
    fn refill_caps_at_burst() {
        let rl = RateLimiter::new(RateLimitConfig::new(10.0, 3.0));
        for _ in 0..3 {
            assert!(rl.try_acquire_at("t", 0).is_ok());
        }
        // An hour idle refills to the cap, not beyond it.
        let hour = 3_600 * SEC;
        for _ in 0..3 {
            assert!(rl.try_acquire_at("t", hour).is_ok());
        }
        assert!(rl.try_acquire_at("t", hour).is_err());
    }

    #[test]
    fn keys_are_independent() {
        let rl = RateLimiter::new(RateLimitConfig::new(1.0, 1.0));
        assert!(rl.try_acquire_at("hot", 0).is_ok());
        assert!(rl.try_acquire_at("hot", 0).is_err(), "hot key exhausted");
        assert!(
            rl.try_acquire_at("cold", 0).is_ok(),
            "other keys unaffected"
        );
        assert_eq!(rl.keys(), vec!["cold".to_string(), "hot".to_string()]);
    }

    #[test]
    fn decisions_are_a_pure_function_of_the_timestamps() {
        let run = || {
            let rl = RateLimiter::new(RateLimitConfig::new(5.0, 2.0));
            (0..20u64)
                .map(|i| rl.try_acquire_at("t", i * SEC / 10).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same timestamps, same admissions");
    }

    #[test]
    fn stale_timestamps_do_not_refill() {
        let rl = RateLimiter::new(RateLimitConfig::new(1.0, 1.0));
        assert!(rl.try_acquire_at("t", 5 * SEC).is_ok());
        // A timestamp before the high-water mark must not mint tokens.
        assert!(rl.try_acquire_at("t", 0).is_err());
        assert!(rl.try_acquire_at("t", 5 * SEC).is_err());
        assert!(rl.try_acquire_at("t", 6 * SEC).is_ok());
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn rejects_nonpositive_rates() {
        RateLimitConfig::new(0.0, 1.0);
    }
}
