//! Graceful shutdown with connection accounting: a cloneable [`Shutdown`]
//! handle that a server triggers once, plus RAII [`ConnectionGuard`]s that
//! count the work still in flight so the server can *drain* — stop
//! accepting, let accepted connections finish, and only then return.
//!
//! This is the primitive under `restore-serve`'s hot-swap semantics too:
//! replacing a tenant snapshot never interrupts in-flight requests, it
//! only changes what *new* requests see; the old snapshot drains under its
//! existing `Arc` refs exactly like connections drain under their guards.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[derive(Default)]
struct State {
    /// Set once by [`Shutdown::trigger`]; never cleared.
    stopping: bool,
    /// Live [`ConnectionGuard`]s.
    active: usize,
    /// Guards ever issued (connection accounting for metrics).
    total: u64,
}

#[derive(Default)]
struct Inner {
    state: Mutex<State>,
    changed: Condvar,
}

/// A cloneable shutdown signal + in-flight counter. All clones share one
/// state; any clone may trigger, account, or drain.
#[derive(Clone, Default)]
pub struct Shutdown {
    inner: Arc<Inner>,
}

impl Shutdown {
    pub fn new() -> Self {
        Self::default()
    }

    /// Flips the signal (idempotent) and wakes drain waiters. New
    /// [`Shutdown::begin`] calls fail from this point on.
    pub fn trigger(&self) {
        let mut st = lock(&self.inner.state);
        st.stopping = true;
        self.inner.changed.notify_all();
    }

    pub fn is_triggered(&self) -> bool {
        lock(&self.inner.state).stopping
    }

    /// Registers one unit of in-flight work. Returns `None` once shutdown
    /// has been triggered — the caller must refuse the connection.
    pub fn begin(&self) -> Option<ConnectionGuard> {
        let mut st = lock(&self.inner.state);
        if st.stopping {
            return None;
        }
        st.active += 1;
        st.total += 1;
        Some(ConnectionGuard {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Guards currently alive.
    pub fn active(&self) -> usize {
        lock(&self.inner.state).active
    }

    /// Guards ever issued.
    pub fn total_started(&self) -> u64 {
        lock(&self.inner.state).total
    }

    /// Triggers shutdown and blocks until every guard has dropped or the
    /// timeout elapses. Returns `true` when fully drained.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.trigger();
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.inner.state);
        while st.active > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .inner
                .changed
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        true
    }
}

/// RAII token for one in-flight connection/request; dropping it (including
/// by panic) decrements the active count and wakes drain waiters.
pub struct ConnectionGuard {
    inner: Arc<Inner>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        let mut st = lock(&self.inner.state);
        st.active -= 1;
        self.inner.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_tracks_guard_lifetimes() {
        let sd = Shutdown::new();
        assert_eq!(sd.active(), 0);
        let a = sd.begin().expect("open");
        let b = sd.begin().expect("open");
        assert_eq!(sd.active(), 2);
        assert_eq!(sd.total_started(), 2);
        drop(a);
        assert_eq!(sd.active(), 1);
        drop(b);
        assert_eq!(sd.active(), 0);
        assert_eq!(sd.total_started(), 2, "total is monotonic");
    }

    #[test]
    fn begin_fails_after_trigger() {
        let sd = Shutdown::new();
        sd.trigger();
        assert!(sd.is_triggered());
        assert!(sd.begin().is_none());
    }

    #[test]
    fn drain_waits_for_inflight_work() {
        let sd = Shutdown::new();
        let guard = sd.begin().expect("open");
        let worker = {
            let sd = sd.clone();
            std::thread::spawn(move || {
                // Work finishes shortly after shutdown is triggered.
                while !sd.is_triggered() {
                    std::thread::yield_now();
                }
                std::thread::sleep(Duration::from_millis(20));
                drop(guard);
            })
        };
        assert!(sd.drain(Duration::from_secs(5)), "must drain");
        assert_eq!(sd.active(), 0);
        worker.join().expect("worker");
    }

    #[test]
    fn drain_times_out_while_work_is_stuck() {
        let sd = Shutdown::new();
        let _stuck = sd.begin().expect("open");
        assert!(!sd.drain(Duration::from_millis(30)));
        assert_eq!(sd.active(), 1);
    }

    #[test]
    fn clones_share_state() {
        let sd = Shutdown::new();
        let other = sd.clone();
        let _g = other.begin().expect("open");
        assert_eq!(sd.active(), 1);
        sd.trigger();
        assert!(other.is_triggered());
        assert!(other.begin().is_none());
    }
}
