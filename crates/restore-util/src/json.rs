//! Minimal JSON serialization for experiment artifacts.
//!
//! The environment cannot pull serde, and the evaluation only ever needs to
//! *write* flat result records, so this module provides a [`ToJson`] trait
//! for primitives and containers plus the [`impl_to_json!`] macro that
//! derives the object encoding for a named-field struct.

/// Serializes a value to a JSON string.
pub trait ToJson {
    fn to_json(&self) -> String;
}

/// Escapes a string per RFC 8259.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn float_to_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".to_string()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> String {
        float_to_json(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> String {
        float_to_json(*self as f64)
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> String {
                format!("{self}")
            }
        }
    )*};
}

int_to_json!(usize, u64, u32, i64, i32);

impl ToJson for bool {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        format!("\"{}\"", escape(self))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> String {
        format!("\"{}\"", escape(self))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(ToJson::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(ToJson::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> String {
        format!("[{},{}]", self.0.to_json(), self.1.to_json())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

/// Implements [`ToJson`] for a named-field struct by listing its fields:
///
/// ```ignore
/// impl_to_json!(Cell { name, score, errors });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> String {
                let mut parts: Vec<String> = Vec::new();
                $(
                    parts.push(format!(
                        "\"{}\":{}",
                        stringify!($field),
                        $crate::json::ToJson::to_json(&self.$field)
                    ));
                )+
                format!("{{{}}}", parts.join(","))
            }
        }
    };
}

/// A parsed JSON value — the read side of this module, used by the bench
/// trend report to diff freshly written `results/BENCH_*.json` records
/// against the previous run's.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object fields in document order.
    pub fn fields(&self) -> &[(String, JsonValue)] {
        match self {
            JsonValue::Obj(fields) => fields,
            _ => &[],
        }
    }
}

/// The write side of [`JsonValue`]: renders the tree back to a compact
/// document, inverse of [`parse`]. Handy for canonicalizing bodies in
/// tests and for building dynamic documents (the HTTP wire surface builds
/// responses this way).
impl ToJson for JsonValue {
    fn to_json(&self) -> String {
        match self {
            JsonValue::Null => "null".to_string(),
            JsonValue::Bool(b) => b.to_json(),
            JsonValue::Num(v) => v.to_json(),
            JsonValue::Str(s) => s.to_json(),
            JsonValue::Arr(items) => {
                let parts: Vec<String> = items.iter().map(ToJson::to_json).collect();
                format!("[{}]", parts.join(","))
            }
            JsonValue::Obj(fields) => {
                let parts: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{}", escape(k), v.to_json()))
                    .collect();
                format!("{{{}}}", parts.join(","))
            }
        }
    }
}

/// Parses a JSON document. Returns `None` on any syntax error or trailing
/// garbage — callers treat unreadable files as "no previous data".
pub fn parse(input: &str) -> Option<JsonValue> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(value)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos).map(JsonValue::Str),
        b't' => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        b'n' => parse_lit(b, pos, "null", JsonValue::Null),
        _ => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Option<JsonValue> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(v)
    } else {
        None
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(JsonValue::Num)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    eat(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        // Surrogate pairs are not rebuilt — the writer in
                        // this module never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    eat(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
    eat(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        eat(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(JsonValue::Obj(fields));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        name: String,
        score: f64,
        tags: Vec<(String, f64)>,
        err: Option<String>,
    }
    crate::impl_to_json!(Demo {
        name,
        score,
        tags,
        err
    });

    #[test]
    fn struct_round_trips_shape() {
        let d = Demo {
            name: "a\"b".into(),
            score: 0.5,
            tags: vec![("x".into(), 1.0)],
            err: None,
        };
        assert_eq!(
            d.to_json(),
            r#"{"name":"a\"b","score":0.5,"tags":[["x",1]],"err":null}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let d = Demo {
            name: "a\"b\\c\nd".into(),
            score: -1.25e3,
            tags: vec![("x".into(), 1.0), ("y".into(), 0.5)],
            err: None,
        };
        let parsed = parse(&d.to_json()).expect("parse");
        assert_eq!(
            parsed.get("name").and_then(JsonValue::as_str),
            Some("a\"b\\c\nd")
        );
        assert_eq!(
            parsed.get("score").and_then(JsonValue::as_f64),
            Some(-1250.0)
        );
        assert_eq!(parsed.get("err"), Some(&JsonValue::Null));
        let tags = parsed.get("tags").and_then(JsonValue::as_array).unwrap();
        assert_eq!(tags[1].as_array().unwrap()[0].as_str(), Some("y"));
    }

    #[test]
    fn parse_handles_scalars_arrays_and_ws() {
        assert_eq!(parse(" true "), Some(JsonValue::Bool(true)));
        assert_eq!(parse("[]"), Some(JsonValue::Arr(vec![])));
        assert_eq!(parse("{}"), Some(JsonValue::Obj(vec![])));
        assert_eq!(
            parse("[1, 2,\n3]"),
            Some(JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0),
                JsonValue::Num(3.0)
            ]))
        );
    }

    #[test]
    fn jsonvalue_writer_round_trips() {
        let doc = r#"{"a":[1,true,null,"x\ny"],"b":{"c":-2.5},"d":""}"#;
        let parsed = parse(doc).expect("parse");
        assert_eq!(parsed.to_json(), doc);
        assert_eq!(parse(&parsed.to_json()), Some(parsed));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse("{"), None);
        assert_eq!(parse("[1,]"), None);
        assert_eq!(parse("12 34"), None);
        assert_eq!(parse("nope"), None);
    }
}
