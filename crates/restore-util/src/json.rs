//! Minimal JSON serialization for experiment artifacts.
//!
//! The environment cannot pull serde, and the evaluation only ever needs to
//! *write* flat result records, so this module provides a [`ToJson`] trait
//! for primitives and containers plus the [`impl_to_json!`] macro that
//! derives the object encoding for a named-field struct.

/// Serializes a value to a JSON string.
pub trait ToJson {
    fn to_json(&self) -> String;
}

/// Escapes a string per RFC 8259.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn float_to_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        "null".to_string()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> String {
        float_to_json(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> String {
        float_to_json(*self as f64)
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> String {
                format!("{self}")
            }
        }
    )*};
}

int_to_json!(usize, u64, u32, i64, i32);

impl ToJson for bool {
    fn to_json(&self) -> String {
        format!("{self}")
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        format!("\"{}\"", escape(self))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> String {
        format!("\"{}\"", escape(self))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(ToJson::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(ToJson::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> String {
        format!("[{},{}]", self.0.to_json(), self.1.to_json())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

/// Implements [`ToJson`] for a named-field struct by listing its fields:
///
/// ```ignore
/// impl_to_json!(Cell { name, score, errors });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> String {
                let mut parts: Vec<String> = Vec::new();
                $(
                    parts.push(format!(
                        "\"{}\":{}",
                        stringify!($field),
                        $crate::json::ToJson::to_json(&self.$field)
                    ));
                )+
                format!("{{{}}}", parts.join(","))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        name: String,
        score: f64,
        tags: Vec<(String, f64)>,
        err: Option<String>,
    }
    crate::impl_to_json!(Demo {
        name,
        score,
        tags,
        err
    });

    #[test]
    fn struct_round_trips_shape() {
        let d = Demo {
            name: "a\"b".into(),
            score: 0.5,
            tags: vec![("x".into(), 1.0)],
            err: None,
        };
        assert_eq!(
            d.to_json(),
            r#"{"name":"a\"b","score":0.5,"tags":[["x",1]],"err":null}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
    }
}
