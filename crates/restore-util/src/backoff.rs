//! Capped exponential backoff with deterministic jitter — the client half
//! of the ingress resilience plane.
//!
//! A retrying caller asks for the delay before attempt `n`; the answer is
//! `initial · multiplier^n`, capped at `max`, then scaled by a jitter
//! factor in `[1 - jitter, 1]` derived from [`derive_seed`](crate::derive_seed)
//! over `(seed, attempt)`. Jitter de-synchronizes a thundering herd of
//! retriers, and deriving it from a seed instead of a global RNG keeps the
//! whole retry schedule a pure function of `(config, seed)` — reproducible
//! in tests and across worker counts, like every other randomized schedule
//! in this workspace.

use std::time::Duration;

use crate::derive_seed;

/// Exponential backoff knobs.
#[derive(Clone, Copy, Debug)]
pub struct BackoffConfig {
    /// Delay before the first retry (attempt 0), pre-jitter.
    pub initial: Duration,
    /// Upper bound every delay is capped at, pre-jitter.
    pub max: Duration,
    /// Growth factor between consecutive attempts.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a deterministic
    /// factor in `[1 - jitter, 1]`. Zero disables jitter.
    pub jitter: f64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        Self {
            initial: Duration::from_millis(50),
            max: Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }
}

impl BackoffConfig {
    /// The delay before retry `attempt` (0-based) of the schedule seeded
    /// with `seed`. Pure: same `(config, seed, attempt)`, same delay.
    pub fn delay(&self, seed: u64, attempt: u32) -> Duration {
        let raw = self.initial.as_secs_f64() * self.multiplier.powi(attempt as i32);
        let capped = raw.min(self.max.as_secs_f64());
        // 53 uniform mantissa bits → `u` in [0, 1).
        let u = (derive_seed(seed, attempt as u64) >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - self.jitter.clamp(0.0, 1.0) * u;
        Duration::from_secs_f64(capped * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = BackoffConfig::default();
        let schedule =
            |seed: u64| -> Vec<Duration> { (0..8).map(|a| cfg.delay(seed, a)).collect() };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "seeds de-synchronize retriers");
    }

    #[test]
    fn delays_grow_exponentially_within_the_jitter_band() {
        let cfg = BackoffConfig {
            initial: Duration::from_millis(10),
            max: Duration::from_secs(60),
            multiplier: 2.0,
            jitter: 0.25,
        };
        for attempt in 0..6u32 {
            let nominal = 0.010 * 2f64.powi(attempt as i32);
            let d = cfg.delay(3, attempt).as_secs_f64();
            assert!(
                d <= nominal + 1e-12 && d >= nominal * 0.75 - 1e-12,
                "attempt {attempt}: {d}s outside [{}, {nominal}]s",
                nominal * 0.75
            );
        }
    }

    #[test]
    fn delays_cap_at_max() {
        let cfg = BackoffConfig {
            initial: Duration::from_millis(100),
            max: Duration::from_millis(350),
            multiplier: 2.0,
            jitter: 0.0,
        };
        let delays: Vec<f64> = (0..6).map(|a| cfg.delay(0, a).as_secs_f64()).collect();
        assert_eq!(delays[0], 0.1);
        assert_eq!(delays[1], 0.2);
        assert!(delays[2..].iter().all(|&d| (d - 0.35).abs() < 1e-12));
    }

    #[test]
    fn zero_jitter_is_exact() {
        let cfg = BackoffConfig {
            jitter: 0.0,
            ..BackoffConfig::default()
        };
        assert_eq!(
            cfg.delay(1, 0),
            cfg.delay(2, 0),
            "no jitter, no seed effect"
        );
        assert_eq!(cfg.delay(1, 0), cfg.initial);
    }
}
