//! Generic pooling and health-state primitives — the substrate under the
//! shard router's per-shard connection pools.
//!
//! Two pieces, deliberately decoupled:
//!
//! * [`ObjectPool`] — a bounded stack of reusable objects (checked-out
//!   items are simply owned by the caller; returning is optional, the pool
//!   drops overflow). Counters track reuse vs. miss vs. discard so a
//!   `/metrics` view can show whether pooling actually pays.
//! * [`HealthState`] — an up/down flag driven by consecutive-failure
//!   counting: `record_failure(threshold)` flips to down once `threshold`
//!   consecutive failures accumulate, one `record_success` flips back up.
//!   Transition edges are reported to the caller (for logging / respawn
//!   triggers) and counted (for metrics).
//!
//! Both are lock-light (`Mutex` only around the object stack) and safe to
//! share behind an `Arc` across a reactor, a worker pool, and a monitor
//! thread.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Point-in-time counters of an [`ObjectPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls answered from the pool.
    pub hits: u64,
    /// `take` calls that found the pool empty (caller creates afresh).
    pub misses: u64,
    /// Objects dropped because the pool was full (or cleared).
    pub discarded: u64,
    /// Objects currently idle in the pool.
    pub idle: usize,
}

/// A bounded LIFO pool of reusable objects. LIFO keeps the hottest object
/// (most recently used connection, warmest buffers) cycling.
#[derive(Debug)]
pub struct ObjectPool<T> {
    slots: Mutex<Vec<T>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    discarded: AtomicU64,
}

impl<T> ObjectPool<T> {
    /// A pool holding at most `capacity` idle objects (0 disables pooling:
    /// every `put` discards).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(Vec::with_capacity(capacity.min(64))),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// Takes the most recently returned object, if any.
    pub fn take(&self) -> Option<T> {
        let taken = self.slots.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match &taken {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        taken
    }

    /// Returns an object to the pool; `false` means the pool was full and
    /// the object was dropped instead.
    pub fn put(&self, object: T) -> bool {
        {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            if slots.len() < self.capacity {
                slots.push(object);
                return true;
            }
        }
        // Dropped outside the lock: object destructors (socket close) must
        // not run under the pool mutex.
        self.discarded.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Drops every idle object (e.g. after the peer they were dialed to
    /// moved). Returns how many were dropped.
    pub fn clear(&self) -> usize {
        let drained = {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *slots)
        };
        let n = drained.len();
        self.discarded.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Objects currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            idle: self.idle(),
        }
    }
}

/// Up/down health of one peer, driven by consecutive-failure counting.
/// Starts up (a peer is innocent until probed otherwise); any success
/// resets the failure streak and restores up.
#[derive(Debug)]
pub struct HealthState {
    up: AtomicBool,
    consecutive_failures: AtomicU32,
    /// Up→down transitions observed so far.
    times_down: AtomicU64,
}

impl Default for HealthState {
    fn default() -> Self {
        Self::new()
    }
}

impl HealthState {
    pub fn new() -> Self {
        Self {
            up: AtomicBool::new(true),
            consecutive_failures: AtomicU32::new(0),
            times_down: AtomicU64::new(0),
        }
    }

    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Acquire)
    }

    /// Consecutive failures since the last success.
    pub fn failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::Relaxed)
    }

    /// Up→down transitions so far.
    pub fn times_down(&self) -> u64 {
        self.times_down.load(Ordering::Relaxed)
    }

    /// Records a successful interaction; returns `true` on the down→up
    /// edge (the peer just recovered).
    pub fn record_success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        !self.up.swap(true, Ordering::AcqRel)
    }

    /// Records a failed interaction; once `threshold` consecutive failures
    /// accumulate the peer goes down. Returns `true` on the up→down edge.
    /// A `threshold` of 0 or 1 means the first failure downs the peer.
    pub fn record_failure(&self, threshold: u32) -> bool {
        let failures = self
            .consecutive_failures
            .fetch_add(1, Ordering::Relaxed)
            .saturating_add(1);
        if failures >= threshold.max(1) {
            let was_up = self.up.swap(false, Ordering::AcqRel);
            if was_up {
                self.times_down.fetch_add(1, Ordering::Relaxed);
            }
            was_up
        } else {
            false
        }
    }

    /// Forces the peer down immediately (e.g. its process was observed to
    /// exit — no need to wait out probe failures). Returns `true` on the
    /// up→down edge.
    pub fn force_down(&self) -> bool {
        self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
        let was_up = self.up.swap(false, Ordering::AcqRel);
        if was_up {
            self.times_down.fetch_add(1, Ordering::Relaxed);
        }
        was_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_lifo_and_bounded() {
        let pool = ObjectPool::new(2);
        assert!(pool.take().is_none());
        assert!(pool.put(1));
        assert!(pool.put(2));
        assert!(!pool.put(3), "third object overflows capacity 2");
        assert_eq!(pool.take(), Some(2), "LIFO: most recent first");
        assert_eq!(pool.take(), Some(1));
        assert!(pool.take().is_none());
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.discarded), (2, 2, 1));
        assert_eq!(stats.idle, 0);
    }

    #[test]
    fn pool_clear_discards_idle_objects() {
        let pool = ObjectPool::new(4);
        pool.put("a");
        pool.put("b");
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.clear(), 2);
        assert_eq!(pool.idle(), 0);
        assert_eq!(pool.stats().discarded, 2);
    }

    #[test]
    fn zero_capacity_pool_discards_everything() {
        let pool = ObjectPool::new(0);
        assert!(!pool.put(7));
        assert!(pool.take().is_none());
    }

    #[test]
    fn health_downs_after_threshold_and_recovers_on_success() {
        let health = HealthState::new();
        assert!(health.is_up());
        assert!(!health.record_failure(3), "1 failure: still up");
        assert!(!health.record_failure(3), "2 failures: still up");
        assert!(health.record_failure(3), "3rd failure crosses threshold");
        assert!(!health.is_up());
        assert!(!health.record_failure(3), "already down: no new edge");
        assert_eq!(health.times_down(), 1);
        assert!(health.record_success(), "success is the up edge");
        assert!(health.is_up());
        assert_eq!(health.failures(), 0);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let health = HealthState::new();
        health.record_failure(3);
        health.record_failure(3);
        health.record_success();
        assert!(!health.record_failure(3), "streak restarted from zero");
        assert!(health.is_up());
    }

    #[test]
    fn force_down_is_immediate_and_counted() {
        let health = HealthState::new();
        assert!(health.force_down());
        assert!(!health.is_up());
        assert!(!health.force_down(), "second force: no new edge");
        assert_eq!(health.times_down(), 1);
    }
}
