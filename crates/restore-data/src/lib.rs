//! # restore-data — datasets and biased removal for the ReStore evaluation
//!
//! The paper evaluates on the Airbnb-derived housing schema (Fig. 4a), the
//! IMDB-derived movies schema (Fig. 4b) and a controlled synthetic
//! two-table dataset (Exp. 1). Neither real dump is available offline, so
//! this crate generates databases with the same schema shapes and *planted*
//! cross-table correlations (documented per generator), plus the machinery
//! that derives incomplete databases from them:
//!
//! * [`synthetic`] — the Exp. 1 dataset with controllable predictability,
//!   skew, and fan-out predictability;
//! * [`housing`] / [`movies`] — the two "real-world" schemas;
//! * [`removal`] — systematic biased removal (keep rate, removal
//!   correlation, tuple-factor keep rate, cascades);
//! * [`setups`] — the ten completion setups H1–H5 / M1–M5 of Fig. 4c.

pub mod housing;
pub mod movies;
pub mod removal;
pub mod setups;
pub mod synthetic;
pub mod zipf;

pub use removal::{
    apply_removal, most_frequent_value, tf_column_name, BiasKind, BiasSpec, RemovalConfig, Scenario,
};
pub use setups::{
    all_setups, build_scenario, housing_setups, movie_setups, setup_by_id, DatasetKind, Setup,
};
pub use synthetic::{generate_synthetic, SyntheticConfig};
pub use zipf::Zipf;
