//! The completion setups of Fig. 4c: H1–H5 on the housing dataset and
//! M1–M5 on the movies dataset, each naming the biased attribute and the
//! tables that stay complete.

use crate::housing::{generate_housing, HousingConfig};
use crate::movies::{generate_movies, MoviesConfig};
use crate::removal::{apply_removal, BiasSpec, RemovalConfig, Scenario};

/// Which real-world dataset a setup uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    Housing,
    Movies,
}

/// One completion setup row of Fig. 4c.
#[derive(Clone, Debug)]
pub struct Setup {
    pub id: &'static str,
    pub dataset: DatasetKind,
    /// Biased attribute (table, column, categorical/continuous).
    pub bias: BiasSpec,
    /// Share of tuple factors kept (30% housing, 20% movies per Fig. 4c).
    pub tf_keep_rate: f64,
    /// Extra uniform removals (M4/M5 drop 20% of movies).
    pub extra_removals: Vec<(&'static str, f64)>,
    /// Link tables whose dangling rows are removed (movies only).
    pub cascade: Vec<&'static str>,
}

const MOVIE_LINKS: [&str; 3] = ["movie_company", "movie_actor", "movie_director"];

/// The five housing setups H1–H5 (Fig. 4c, upper block).
pub fn housing_setups() -> Vec<Setup> {
    let mk = |id, bias| Setup {
        id,
        dataset: DatasetKind::Housing,
        bias,
        tf_keep_rate: 0.3,
        extra_removals: vec![],
        cascade: vec![],
    };
    vec![
        mk("H1", BiasSpec::continuous("apartment", "price")),
        mk("H2", BiasSpec::categorical("apartment", "room_type")),
        mk("H3", BiasSpec::categorical("apartment", "property_type")),
        mk("H4", BiasSpec::continuous("landlord", "landlord_since")),
        mk(
            "H5",
            BiasSpec::continuous("landlord", "landlord_response_rate"),
        ),
    ]
}

/// The five movies setups M1–M5 (Fig. 4c, lower block).
pub fn movie_setups() -> Vec<Setup> {
    let mk = |id, bias, extra: Vec<(&'static str, f64)>| Setup {
        id,
        dataset: DatasetKind::Movies,
        bias,
        tf_keep_rate: 0.2,
        extra_removals: extra,
        cascade: MOVIE_LINKS.to_vec(),
    };
    vec![
        mk(
            "M1",
            BiasSpec::continuous("movie", "production_year"),
            vec![],
        ),
        mk("M2", BiasSpec::categorical("movie", "genre"), vec![]),
        mk("M3", BiasSpec::categorical("movie", "country"), vec![]),
        mk(
            "M4",
            BiasSpec::continuous("director", "birth_year"),
            vec![("movie", 0.8)],
        ),
        mk(
            "M5",
            BiasSpec::categorical("company", "country_code"),
            vec![("movie", 0.8)],
        ),
    ]
}

/// All ten setups in paper order.
pub fn all_setups() -> Vec<Setup> {
    let mut v = housing_setups();
    v.extend(movie_setups());
    v
}

/// Looks a setup up by id (`"H1"`…`"M5"`).
pub fn setup_by_id(id: &str) -> Option<Setup> {
    all_setups().into_iter().find(|s| s.id == id)
}

/// Builds the complete database for a setup at the given scale and applies
/// the biased removal with the swept `keep_rate` / `removal_correlation`.
pub fn build_scenario(
    setup: &Setup,
    keep_rate: f64,
    removal_correlation: f64,
    scale: f64,
    seed: u64,
) -> Scenario {
    let complete = match setup.dataset {
        DatasetKind::Housing => generate_housing(&HousingConfig::scaled(scale), seed),
        DatasetKind::Movies => generate_movies(&MoviesConfig::scaled(scale), seed),
    };
    let cfg = RemovalConfig {
        bias: setup.bias.clone(),
        keep_rate,
        removal_correlation,
        tf_keep_rate: setup.tf_keep_rate,
        extra_removals: setup
            .extra_removals
            .iter()
            .map(|(t, k)| (t.to_string(), *k))
            .collect(),
        cascade: setup.cascade.iter().map(|c| c.to_string()).collect(),
        seed: seed ^ 0x7a3f,
    };
    apply_removal(&complete, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_setups_matching_figure_4c() {
        let setups = all_setups();
        assert_eq!(setups.len(), 10);
        assert_eq!(setups[0].id, "H1");
        assert_eq!(setups[9].id, "M5");
        assert!(housing_setups()
            .iter()
            .all(|s| (s.tf_keep_rate - 0.3).abs() < 1e-9));
        assert!(movie_setups()
            .iter()
            .all(|s| (s.tf_keep_rate - 0.2).abs() < 1e-9));
    }

    #[test]
    fn h1_scenario_removes_apartments_only() {
        let sc = build_scenario(&setup_by_id("H1").unwrap(), 0.5, 0.5, 0.15, 3);
        assert_eq!(sc.incomplete_tables, vec!["apartment".to_string()]);
        let before = sc.complete.table("apartment").unwrap().n_rows();
        let after = sc.incomplete.table("apartment").unwrap().n_rows();
        assert_eq!(after, (before as f64 * 0.5).round() as usize);
        assert_eq!(
            sc.complete.table("landlord").unwrap().n_rows(),
            sc.incomplete.table("landlord").unwrap().n_rows()
        );
    }

    #[test]
    fn h1_bias_lowers_average_price() {
        let sc = build_scenario(&setup_by_id("H1").unwrap(), 0.4, 0.8, 0.15, 4);
        let before = sc
            .complete
            .table("apartment")
            .unwrap()
            .column_by_name("price")
            .unwrap()
            .mean()
            .unwrap();
        let after = sc
            .incomplete
            .table("apartment")
            .unwrap()
            .column_by_name("price")
            .unwrap()
            .mean()
            .unwrap();
        assert!(
            after < before,
            "continuous bias must lower the mean: {before} -> {after}"
        );
    }

    #[test]
    fn m4_also_removes_movies_and_cascades_links() {
        let sc = build_scenario(&setup_by_id("M4").unwrap(), 0.5, 0.5, 0.15, 5);
        assert!(sc.incomplete_tables.contains(&"director".to_string()));
        assert!(sc.incomplete_tables.contains(&"movie".to_string()));
        assert!(sc.incomplete_tables.contains(&"movie_director".to_string()));
        let mb = sc.complete.table("movie").unwrap().n_rows();
        let ma = sc.incomplete.table("movie").unwrap().n_rows();
        assert_eq!(ma, (mb as f64 * 0.8).round() as usize);
    }

    #[test]
    fn tf_columns_exist_on_parents() {
        let sc = build_scenario(&setup_by_id("H1").unwrap(), 0.5, 0.5, 0.15, 6);
        let n = sc.incomplete.table("neighborhood").unwrap();
        assert!(
            n.resolve("__tf_apartment").is_ok(),
            "neighborhood must carry TF metadata"
        );
        let l = sc.incomplete.table("landlord").unwrap();
        assert!(
            l.resolve("__tf_apartment").is_ok(),
            "landlord must carry TF metadata"
        );
    }

    #[test]
    fn m2_bias_value_is_most_frequent_genre() {
        let sc = build_scenario(&setup_by_id("M2").unwrap(), 0.6, 0.6, 0.15, 7);
        assert!(sc.bias_value.is_some());
        // The biased value must be depleted in the incomplete data.
        let v = sc.bias_value.clone().unwrap();
        let frac = |db: &restore_db::Database| {
            let t = db.table("movie").unwrap();
            let idx = t.resolve("genre").unwrap();
            (0..t.n_rows())
                .filter(|&r| t.value(r, idx).to_string() == v)
                .count() as f64
                / t.n_rows() as f64
        };
        assert!(frac(&sc.incomplete) < frac(&sc.complete));
    }
}
