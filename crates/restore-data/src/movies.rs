//! The movies dataset (Fig. 4b) — a synthetic stand-in for the IMDB dump,
//! with the paper's modifications: `movie_info` merged into `movie` (genre,
//! rating) and the person relation split into `actor` and `director`.
//!
//! Planted correlations (what the completions exploit):
//!
//! * `movie.genre`/`movie.country`/`movie.production_year` are mutually
//!   correlated (genre mix shifts by country, production years shift by
//!   genre);
//! * directors are matched to movies by (country, era) buckets, so
//!   `director.birth_year ≈ production_year − 40` and
//!   `director.birth_country` tracks `movie.country` (setups M1, M4);
//! * companies are matched by country, so `company.country_code` tracks
//!   `movie.country` (setups M3, M5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use restore_db::{DataType, Database, Field, ForeignKey, Table, Value};

use crate::zipf::Zipf;

/// Sizes of the generated movie database.
#[derive(Clone, Debug)]
pub struct MoviesConfig {
    pub n_movies: usize,
    pub n_directors: usize,
    pub n_actors: usize,
    pub n_companies: usize,
    /// Mean actors per movie (the paper's IMDB has a much larger fan-out;
    /// scaled down for laptop runtimes, ratios documented in DESIGN.md).
    pub actors_per_movie: usize,
}

impl MoviesConfig {
    pub fn small() -> Self {
        Self {
            n_movies: 2000,
            n_directors: 500,
            n_actors: 1500,
            n_companies: 300,
            actors_per_movie: 4,
        }
    }

    pub fn scaled(factor: f64) -> Self {
        let s = Self::small();
        Self {
            n_movies: ((s.n_movies as f64 * factor) as usize).max(50),
            n_directors: ((s.n_directors as f64 * factor) as usize).max(20),
            n_actors: ((s.n_actors as f64 * factor) as usize).max(30),
            n_companies: ((s.n_companies as f64 * factor) as usize).max(10),
            actors_per_movie: s.actors_per_movie,
        }
    }
}

impl Default for MoviesConfig {
    fn default() -> Self {
        Self::small()
    }
}

const COUNTRIES: [&str; 10] = [
    "USA", "UK", "Germany", "France", "India", "Japan", "Italy", "Spain", "Canada", "Brazil",
];
const COUNTRY_CODES: [&str; 10] = [
    "[us]", "[gb]", "[de]", "[fr]", "[in]", "[jp]", "[it]", "[es]", "[ca]", "[br]",
];
const GENRES: [&str; 8] = [
    "Drama",
    "Comedy",
    "Action",
    "Thriller",
    "Romance",
    "Documentary",
    "Horror",
    "Animation",
];
const COMPANY_TYPES: [&str; 2] = ["production companies", "distributors"];

/// Decade-level activity buckets: directors/actors are matched to movies
/// at this granularity, which is what makes production years predictable
/// from people evidence (the paper's completions rely on real-world data
/// being "largely correlated", §7.2).
fn period(year: i64) -> usize {
    (((year - 1950) / 10).clamp(0, 6)) as usize
}

/// Generates the movie database with the Fig. 4b star schema:
/// three entity tables around `movie` connected through m:n link tables.
pub fn generate_movies(cfg: &MoviesConfig, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let country_zipf = Zipf::new(COUNTRIES.len(), 1.2);

    // --- directors -----------------------------------------------------------
    let mut director = Table::new(
        "director",
        vec![
            Field::new("id", DataType::Int),
            Field::new("birth_year", DataType::Int),
            Field::new("gender", DataType::Str),
            Field::new("birth_country", DataType::Str),
        ],
    );
    // (country, activity period) -> director ids
    let mut director_buckets: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); 7]; COUNTRIES.len()];
    let mut director_birth = Vec::with_capacity(cfg.n_directors);
    for id in 0..cfg.n_directors {
        let c = country_zipf.sample(&mut rng);
        let birth = 1935 + rng.random_range(0..55i64);
        let gender = if rng.random::<f64>() < 0.8 { "m" } else { "f" };
        director_birth.push(birth);
        // Active roughly 30–55 years after birth.
        for y in [birth + 32, birth + 42, birth + 52] {
            if (1950..=2020).contains(&y) {
                director_buckets[c][period(y)].push(id);
            }
        }
        director
            .push_row(&[
                Value::Int(id as i64),
                Value::Int(birth),
                Value::str(gender),
                Value::str(COUNTRIES[c]),
            ])
            .unwrap();
    }
    db.add_table(director);

    // --- actors --------------------------------------------------------------
    let mut actor = Table::new(
        "actor",
        vec![
            Field::new("id", DataType::Int),
            Field::new("birth_year", DataType::Int),
            Field::new("gender", DataType::Str),
        ],
    );
    let mut actor_buckets: Vec<Vec<usize>> = vec![Vec::new(); 7];
    for id in 0..cfg.n_actors {
        let birth = 1945 + rng.random_range(0..55i64);
        let gender = if rng.random::<f64>() < 0.55 { "m" } else { "f" };
        for y in [birth + 25, birth + 35, birth + 45] {
            if (1950..=2020).contains(&y) {
                actor_buckets[period(y)].push(id);
            }
        }
        actor
            .push_row(&[Value::Int(id as i64), Value::Int(birth), Value::str(gender)])
            .unwrap();
    }
    db.add_table(actor);

    // --- companies -----------------------------------------------------------
    let mut company = Table::new(
        "company",
        vec![
            Field::new("id", DataType::Int),
            Field::new("country_code", DataType::Str),
            Field::new("company_type", DataType::Str),
        ],
    );
    let mut company_buckets: Vec<Vec<usize>> = vec![Vec::new(); COUNTRIES.len()];
    for id in 0..cfg.n_companies {
        let c = country_zipf.sample(&mut rng);
        company_buckets[c].push(id);
        let ty = COMPANY_TYPES[(rng.random::<f64>() < 0.7) as usize ^ 1];
        company
            .push_row(&[
                Value::Int(id as i64),
                Value::str(COUNTRY_CODES[c]),
                Value::str(ty),
            ])
            .unwrap();
    }
    db.add_table(company);

    // --- movies + links --------------------------------------------------------
    let mut movie = Table::new(
        "movie",
        vec![
            Field::new("id", DataType::Int),
            Field::new("production_year", DataType::Int),
            Field::new("genre", DataType::Str),
            Field::new("country", DataType::Str),
            Field::new("rating", DataType::Float),
        ],
    );
    let link_fields = |a: &str, b: &str| {
        vec![
            Field::new("id", DataType::Int),
            Field::new(format!("{a}_id"), DataType::Int),
            Field::new(format!("{b}_id"), DataType::Int),
        ]
    };
    let mut movie_director = Table::new("movie_director", link_fields("movie", "director"));
    let mut movie_actor = Table::new("movie_actor", link_fields("movie", "actor"));
    let mut movie_company = Table::new("movie_company", link_fields("movie", "company"));
    let (mut md_id, mut ma_id, mut mc_id) = (0i64, 0i64, 0i64);

    for id in 0..cfg.n_movies {
        let c = country_zipf.sample(&mut rng);
        // Genre mix shifts with the country group.
        let genre = {
            let shift = c % 4;
            let g: usize = rng.random_range(0..GENRES.len() + 3);
            if g < GENRES.len() {
                (g + shift) % GENRES.len()
            } else {
                shift // over-weight the group's signature genre
            }
        };
        // Production years drift later for some genres (Animation, Action).
        let base = match GENRES[genre] {
            "Animation" => 1998,
            "Action" | "Thriller" => 1992,
            "Documentary" => 1994,
            _ => 1986,
        };
        let year = (base + rng.random_range(0..22i64)).min(2018);
        let rating = (5.0
            + (genre as f64) * 0.2
            + ((year - 1950) as f64) * 0.01
            + rng.random::<f64>() * 2.0)
            .clamp(1.0, 10.0);
        movie
            .push_row(&[
                Value::Int(id as i64),
                Value::Int(year),
                Value::str(GENRES[genre]),
                Value::str(COUNTRIES[c]),
                Value::Float((rating * 10.0).round() / 10.0),
            ])
            .unwrap();

        // Directors from the (country, decade) bucket with fallback.
        let n_dirs = 1 + (rng.random::<f64>() < 0.25) as usize;
        for _ in 0..n_dirs {
            let bucket = &director_buckets[c][period(year)];
            let did = if !bucket.is_empty() && rng.random::<f64>() < 0.85 {
                bucket[rng.random_range(0..bucket.len())]
            } else {
                rng.random_range(0..cfg.n_directors)
            };
            movie_director
                .push_row(&[
                    Value::Int(md_id),
                    Value::Int(id as i64),
                    Value::Int(did as i64),
                ])
                .unwrap();
            md_id += 1;
        }

        // Actors from the era bucket.
        let n_act = 1 + rng.random_range(0..cfg.actors_per_movie * 2);
        for _ in 0..n_act {
            let bucket = &actor_buckets[period(year)];
            let aid = if !bucket.is_empty() && rng.random::<f64>() < 0.8 {
                bucket[rng.random_range(0..bucket.len())]
            } else {
                rng.random_range(0..cfg.n_actors)
            };
            movie_actor
                .push_row(&[
                    Value::Int(ma_id),
                    Value::Int(id as i64),
                    Value::Int(aid as i64),
                ])
                .unwrap();
            ma_id += 1;
        }

        // Companies matching the country with probability 0.8.
        let n_comp = 1 + (rng.random::<f64>() < 0.5) as usize;
        for _ in 0..n_comp {
            let bucket = &company_buckets[c];
            let cid = if !bucket.is_empty() && rng.random::<f64>() < 0.8 {
                bucket[rng.random_range(0..bucket.len())]
            } else {
                rng.random_range(0..cfg.n_companies)
            };
            movie_company
                .push_row(&[
                    Value::Int(mc_id),
                    Value::Int(id as i64),
                    Value::Int(cid as i64),
                ])
                .unwrap();
            mc_id += 1;
        }
    }
    db.add_table(movie);
    db.add_table(movie_director);
    db.add_table(movie_actor);
    db.add_table(movie_company);

    for (link, entity) in [
        ("movie_director", "director"),
        ("movie_actor", "actor"),
        ("movie_company", "company"),
    ] {
        db.add_foreign_key(ForeignKey::new(link, "movie_id", "movie", "id"))
            .unwrap();
        db.add_foreign_key(ForeignKey::new(link, format!("{entity}_id"), entity, "id"))
            .unwrap();
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_figure_4b() {
        let db = generate_movies(&MoviesConfig::small(), 1);
        for t in [
            "movie",
            "director",
            "actor",
            "company",
            "movie_director",
            "movie_actor",
            "movie_company",
        ] {
            assert!(db.table(t).is_ok(), "missing table {t}");
        }
        assert_eq!(db.foreign_keys().len(), 6);
    }

    #[test]
    fn director_birth_year_tracks_production_year() {
        let db = generate_movies(&MoviesConfig::small(), 2);
        let joined = restore_db::query::executor::join_tables(
            &db,
            &[
                "movie".to_string(),
                "movie_director".to_string(),
                "director".to_string(),
            ],
        )
        .unwrap();
        let y = joined.resolve("production_year").unwrap();
        let b = joined.resolve("birth_year").unwrap();
        let mut gaps: Vec<f64> = Vec::new();
        for r in 0..joined.n_rows() {
            gaps.push(joined.value(r, y).as_f64().unwrap() - joined.value(r, b).as_f64().unwrap());
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (30.0..55.0).contains(&mean),
            "director age gap mean {mean} not plausible"
        );
    }

    #[test]
    fn company_country_tracks_movie_country() {
        let db = generate_movies(&MoviesConfig::small(), 3);
        let joined = restore_db::query::executor::join_tables(
            &db,
            &[
                "movie".to_string(),
                "movie_company".to_string(),
                "company".to_string(),
            ],
        )
        .unwrap();
        let mc = joined.resolve("movie.country").unwrap();
        let cc = joined.resolve("country_code").unwrap();
        let mut hit = 0usize;
        for r in 0..joined.n_rows() {
            let country = joined.value(r, mc).to_string();
            let code = joined.value(r, cc).to_string();
            let ci = COUNTRIES.iter().position(|&c| c == country).unwrap();
            if code == COUNTRY_CODES[ci] {
                hit += 1;
            }
        }
        let share = hit as f64 / joined.n_rows() as f64;
        assert!(
            share > 0.6,
            "company/movie country match share only {share}"
        );
    }

    #[test]
    fn us_is_the_most_common_country() {
        let db = generate_movies(&MoviesConfig::small(), 4);
        let m = db.table("movie").unwrap();
        let us = (0..m.n_rows())
            .filter(|&r| m.value(r, 3).to_string() == "USA")
            .count() as f64
            / m.n_rows() as f64;
        assert!(us > 0.2, "USA share {us} too small for zipf(1.2)");
    }

    #[test]
    fn link_tables_reference_valid_ids() {
        let db = generate_movies(&MoviesConfig::scaled(0.2), 5);
        let m = db.table("movie").unwrap().n_rows() as i64;
        let d = db.table("director").unwrap().n_rows() as i64;
        let md = db.table("movie_director").unwrap();
        for r in 0..md.n_rows() {
            assert!(md.value(r, 1).as_i64().unwrap() < m);
            assert!(md.value(r, 2).as_i64().unwrap() < d);
        }
    }
}
