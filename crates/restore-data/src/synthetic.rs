//! The synthetic two-table dataset of Exp. 1 (§7.2).
//!
//! A complete parent table `ta(id, a)` and an incomplete child table
//! `tb(id, a_id, b)` connected by a foreign key. The generator controls the
//! knobs the paper sweeps:
//!
//! * **predictability** — probability that `B` equals a deterministic
//!   function of `A` (the rest is uniform noise);
//! * **skew** — Zipf exponent of `A`'s distribution;
//! * **fan-out predictability** — coherence of `B` *within* the children of
//!   one parent, driven by a latent per-parent group value that `A` does not
//!   reveal (this is what SSAR's self-evidence can exploit but plain AR
//!   cannot, Fig. 5c).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use restore_db::{Database, Field, ForeignKey, Table, Value};

use crate::zipf::Zipf;

/// Configuration of the synthetic dataset.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of parent (`ta`) tuples.
    pub n_parent: usize,
    /// Domain size of attribute `A`.
    pub card_a: usize,
    /// Domain size of attribute `B`.
    pub card_b: usize,
    /// `P(B = f(A))`; the paper sweeps 20%–100%.
    pub predictability: f64,
    /// Zipf exponent of `A` (`None` = uniform).
    pub zipf_a: Option<f64>,
    /// Mean children per parent.
    pub fanout_mean: usize,
    /// When `Some(q)`, `B` follows a latent per-parent group value with
    /// coherence `q` instead of `f(A)` — the fan-out predictability setting.
    pub group_coherence: Option<f64>,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_parent: 400,
            card_a: 10,
            card_b: 10,
            predictability: 0.8,
            zipf_a: None,
            fanout_mean: 5,
            group_coherence: None,
        }
    }
}

/// Generates the two-table synthetic database.
pub fn generate_synthetic(cfg: &SyntheticConfig, seed: u64) -> Database {
    assert!(cfg.card_a > 0 && cfg.card_b > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();

    let mut ta = Table::new(
        "ta",
        vec![
            Field::new("id", restore_db::DataType::Int),
            Field::new("a", restore_db::DataType::Str),
        ],
    );
    let zipf = cfg.zipf_a.map(|s| Zipf::new(cfg.card_a, s));
    let mut a_vals = Vec::with_capacity(cfg.n_parent);
    for id in 0..cfg.n_parent {
        let a = match &zipf {
            Some(z) => z.sample(&mut rng),
            None => rng.random_range(0..cfg.card_a),
        };
        a_vals.push(a);
        ta.push_row(&[Value::Int(id as i64), Value::str(format!("a{a}"))])
            .unwrap();
    }
    db.add_table(ta);

    let mut tb = Table::new(
        "tb",
        vec![
            Field::new("id", restore_db::DataType::Int),
            Field::new("a_id", restore_db::DataType::Int),
            Field::new("b", restore_db::DataType::Str),
        ],
    );
    let mut next_id = 0i64;
    for (pid, &a) in a_vals.iter().enumerate() {
        // Fan-out mildly depends on A so tuple factors are learnable.
        let base = cfg.fanout_mean.max(1);
        let fanout = base + (a % 3);
        // Latent group value for the fan-out-predictability experiments.
        let group_b = rng.random_range(0..cfg.card_b);
        for _ in 0..fanout {
            let b = match cfg.group_coherence {
                Some(q) => {
                    if rng.random::<f64>() < q {
                        group_b
                    } else {
                        rng.random_range(0..cfg.card_b)
                    }
                }
                None => {
                    if rng.random::<f64>() < cfg.predictability {
                        // Deterministic dependency: f(A) = A mod |B|.
                        a % cfg.card_b
                    } else {
                        rng.random_range(0..cfg.card_b)
                    }
                }
            };
            tb.push_row(&[
                Value::Int(next_id),
                Value::Int(pid as i64),
                Value::str(format!("b{b}")),
            ])
            .unwrap();
            next_id += 1;
        }
    }
    db.add_table(tb);
    db.add_foreign_key(ForeignKey::new("tb", "a_id", "ta", "id"))
        .unwrap();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_matches_paper() {
        let db = generate_synthetic(&SyntheticConfig::default(), 1);
        let ta = db.table("ta").unwrap();
        let tb = db.table("tb").unwrap();
        assert_eq!(ta.n_rows(), 400);
        assert!(tb.n_rows() >= 400 * 5);
        assert_eq!(db.foreign_keys().len(), 1);
    }

    #[test]
    fn full_predictability_makes_b_a_function_of_a() {
        let cfg = SyntheticConfig {
            predictability: 1.0,
            ..Default::default()
        };
        let db = generate_synthetic(&cfg, 2);
        let joined =
            restore_db::query::executor::join_tables(&db, &["ta".to_string(), "tb".to_string()])
                .unwrap();
        let a_idx = joined.resolve("ta.a").unwrap();
        let b_idx = joined.resolve("tb.b").unwrap();
        for r in 0..joined.n_rows() {
            let a: usize = joined.value(r, a_idx).as_str().unwrap()[1..]
                .parse()
                .unwrap();
            let b: usize = joined.value(r, b_idx).as_str().unwrap()[1..]
                .parse()
                .unwrap();
            assert_eq!(b, a % 10, "B must equal f(A) at predictability 1.0");
        }
    }

    #[test]
    fn zero_predictability_is_noise() {
        let cfg = SyntheticConfig {
            predictability: 0.0,
            n_parent: 600,
            ..Default::default()
        };
        let db = generate_synthetic(&cfg, 3);
        // The most frequent B value should be near uniform share (10%).
        let tb = db.table("tb").unwrap();
        let mut counts = std::collections::HashMap::new();
        for r in 0..tb.n_rows() {
            *counts.entry(tb.value(r, 2).to_string()).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap() as f64 / tb.n_rows() as f64;
        assert!(max < 0.15, "max B share {max} too large for pure noise");
    }

    #[test]
    fn zipf_skews_a_distribution() {
        let cfg = SyntheticConfig {
            zipf_a: Some(2.0),
            n_parent: 2000,
            ..Default::default()
        };
        let db = generate_synthetic(&cfg, 4);
        let ta = db.table("ta").unwrap();
        let mut counts = std::collections::HashMap::new();
        for r in 0..ta.n_rows() {
            *counts.entry(ta.value(r, 1).to_string()).or_insert(0usize) += 1;
        }
        let a0 = counts.get("a0").copied().unwrap_or(0) as f64 / 2000.0;
        assert!(a0 > 0.4, "zipf(2.0) should concentrate on a0, got {a0}");
    }

    #[test]
    fn group_coherence_makes_siblings_agree() {
        let cfg = SyntheticConfig {
            group_coherence: Some(1.0),
            n_parent: 100,
            ..Default::default()
        };
        let db = generate_synthetic(&cfg, 5);
        let tb = db.table("tb").unwrap();
        let mut per_parent: std::collections::HashMap<i64, Vec<String>> = Default::default();
        for r in 0..tb.n_rows() {
            per_parent
                .entry(tb.value(r, 1).as_i64().unwrap())
                .or_default()
                .push(tb.value(r, 2).to_string());
        }
        for (_, vals) in per_parent {
            assert!(
                vals.windows(2).all(|w| w[0] == w[1]),
                "coherence 1.0 ⇒ all siblings equal"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig::default();
        let a = generate_synthetic(&cfg, 9);
        let b = generate_synthetic(&cfg, 9);
        let (ta, tb) = (a.table("tb").unwrap(), b.table("tb").unwrap());
        assert_eq!(ta.n_rows(), tb.n_rows());
        for r in (0..ta.n_rows()).step_by(97) {
            assert_eq!(ta.row(r), tb.row(r));
        }
    }
}
