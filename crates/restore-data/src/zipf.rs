//! Zipf-distributed sampling (used for attribute skew in Exp. 1 and for
//! realistic fan-out distributions in the housing/movies generators).

use rand::Rng;

/// A Zipf distribution over `{0, …, n−1}` with exponent `s`.
///
/// `s = 0` degenerates to the uniform distribution; larger `s` concentrates
/// mass on small indices (the paper sweeps `zipf(1.0)`–`zipf(3.0)`).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of index `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // Binary search the CDF.
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let z1 = Zipf::new(10, 1.0);
        let z3 = Zipf::new(10, 3.0);
        assert!(z3.pmf(0) > z1.pmf(0));
        assert!(z3.pmf(9) < z1.pmf(9));
    }

    #[test]
    fn samples_follow_pmf() {
        let z = Zipf::new(5, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let n = 20000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.02,
                "index {k}: empirical {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }
}
