//! Systematic biased removal — turns a complete database into an incomplete
//! one the way the paper does (§7.2, §7.3):
//!
//! * a **keep rate** fixes the fraction of tuples that survive;
//! * a **removal correlation** couples the removal probability with a biased
//!   attribute (one value of a categorical attribute, or the normalized
//!   magnitude of a continuous attribute);
//! * only a share of **tuple factors** survives as known metadata (the
//!   `__tf_<child>` columns on parent tables, NULL where unknown — the
//!   `TFApartments = ?` column of Fig. 1a);
//! * optional extra uniform removals and dangling-reference cascades model
//!   the harder movie setups (M4/M5 drop 20% of movies; m:n link tuples
//!   without a matching movie are dropped too).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use restore_db::{Column, DataType, Database, Field, Table, Value};

/// How removal correlates with the biased attribute.
#[derive(Clone, Debug, PartialEq)]
pub enum BiasKind {
    /// Correlate removal with one categorical value (`None` = use the most
    /// frequent value of the column).
    Categorical(Option<String>),
    /// Correlate removal with the min-max-normalized attribute value
    /// (larger values are more likely to be removed).
    Continuous,
}

/// The biased attribute of a removal scenario.
#[derive(Clone, Debug)]
pub struct BiasSpec {
    pub table: String,
    pub column: String,
    pub kind: BiasKind,
}

impl BiasSpec {
    pub fn categorical(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            column: column.into(),
            kind: BiasKind::Categorical(None),
        }
    }

    pub fn continuous(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            column: column.into(),
            kind: BiasKind::Continuous,
        }
    }
}

/// Full configuration of a removal scenario.
#[derive(Clone, Debug)]
pub struct RemovalConfig {
    pub bias: BiasSpec,
    /// Fraction of the biased table's tuples that survive.
    pub keep_rate: f64,
    /// Strength of the bias (0 = uniform removal, 1 = fully biased).
    pub removal_correlation: f64,
    /// Fraction of parent tuples whose true tuple factor stays known.
    pub tf_keep_rate: f64,
    /// Additional `(table, keep_rate)` uniform removals.
    pub extra_removals: Vec<(String, f64)>,
    /// Tables whose rows are dropped when an FK parent row disappeared.
    pub cascade: Vec<String>,
    pub seed: u64,
}

impl RemovalConfig {
    pub fn new(bias: BiasSpec, keep_rate: f64, removal_correlation: f64) -> Self {
        Self {
            bias,
            keep_rate,
            removal_correlation,
            tf_keep_rate: 0.3,
            extra_removals: Vec::new(),
            cascade: Vec::new(),
            seed: 0,
        }
    }
}

/// A complete/incomplete database pair plus bookkeeping for evaluation.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub complete: Database,
    pub incomplete: Database,
    /// Every table that lost tuples (bias target, extra removals, cascades).
    pub incomplete_tables: Vec<String>,
    pub bias: BiasSpec,
    /// The concrete categorical value the removal was biased towards
    /// (`None` for continuous bias).
    pub bias_value: Option<String>,
}

/// Name of the tuple-factor metadata column a parent table carries for an
/// incomplete child (`TFApartments` in Fig. 1a).
pub fn tf_column_name(child_table: &str) -> String {
    format!("__tf_{child_table}")
}

/// Most frequent non-null value of a column (ties broken lexicographically).
pub fn most_frequent_value(table: &Table, column: &str) -> Option<String> {
    let idx = table.resolve(column).ok()?;
    let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
    for r in 0..table.n_rows() {
        let v = table.value(r, idx);
        if !v.is_null() {
            *counts.entry(v.to_string()).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(v, _)| v)
}

/// Per-row bias score in `[0, 1]` (1 = most likely to be removed).
fn bias_scores(table: &Table, spec: &BiasSpec, bias_value: &Option<String>) -> Vec<f64> {
    let idx = table.resolve(&spec.column).expect("bias column must exist");
    match spec.kind {
        BiasKind::Categorical(_) => {
            let target = bias_value.as_deref().unwrap_or_default();
            (0..table.n_rows())
                .map(|r| (table.value(r, idx).to_string() == target) as u8 as f64)
                .collect()
        }
        BiasKind::Continuous => {
            let vals: Vec<f64> = (0..table.n_rows())
                .map(|r| table.value(r, idx).as_f64().unwrap_or(0.0))
                .collect();
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in &vals {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let span = (hi - lo).max(1e-12);
            vals.into_iter().map(|v| (v - lo) / span).collect()
        }
    }
}

/// Keeps exactly `⌈keep_rate · n⌉` rows. The removal probability of row
/// `i` is `q + ρ·√(q(1−q))·(bᵢ−b̄)/σ_b` (clamped), which yields a Pearson
/// correlation of ≈`ρ` between removal and the biased attribute — the
/// construction the paper describes ("to obtain a specific Pearson
/// correlation coefficient", §7.3). Importantly, removal stays
/// *probabilistic*: even at high correlation a few biased tuples survive,
/// so the conditional stays learnable (this drives the paper's observation
/// that lower correlations are easier to correct).
fn biased_keep_mask<R: Rng>(
    scores: &[f64],
    keep_rate: f64,
    correlation: f64,
    rng: &mut R,
) -> Vec<bool> {
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    let n_remove = n - ((keep_rate * n as f64).round() as usize).min(n);
    let q = n_remove as f64 / n as f64;
    let mean = scores.iter().sum::<f64>() / n as f64;
    let var = scores.iter().map(|b| (b - mean) * (b - mean)).sum::<f64>() / n as f64;
    let std = var.sqrt();
    // Per-row removal probabilities (uniform when the attribute is
    // constant or the correlation is zero).
    let probs: Vec<f64> = if std < 1e-12 || correlation == 0.0 {
        vec![q.max(1e-6); n]
    } else {
        scores
            .iter()
            .map(|&b| {
                (q + correlation * (q * (1.0 - q)).sqrt() * (b - mean) / std).clamp(0.02, 0.98)
            })
            .collect()
    };
    // Efraimidis–Spirakis weighted sampling without replacement: remove the
    // `n_remove` rows with the largest u^(1/w) keys.
    let mut keys: Vec<(f64, usize)> = probs
        .iter()
        .enumerate()
        .map(|(i, &w)| (rng.random::<f64>().powf(1.0 / w.max(1e-9)), i))
        .collect();
    keys.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut mask = vec![true; n];
    for &(_, i) in keys.iter().take(n_remove) {
        mask[i] = false;
    }
    mask
}

/// Applies the removal scenario and returns the complete/incomplete pair.
pub fn apply_removal(complete: &Database, cfg: &RemovalConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed_da7a);
    let mut incomplete = complete.clone();
    let mut incomplete_tables: Vec<String> = Vec::new();

    // Resolve the concrete bias value for categorical targets.
    let bias_value = match &cfg.bias.kind {
        BiasKind::Categorical(Some(v)) => Some(v.clone()),
        BiasKind::Categorical(None) => most_frequent_value(
            complete.table(&cfg.bias.table).expect("bias table"),
            &cfg.bias.column,
        ),
        BiasKind::Continuous => None,
    };

    // 1. Primary biased removal.
    {
        let table = incomplete
            .table(&cfg.bias.table)
            .expect("bias table")
            .clone();
        let scores = bias_scores(&table, &cfg.bias, &bias_value);
        let mask = biased_keep_mask(&scores, cfg.keep_rate, cfg.removal_correlation, &mut rng);
        incomplete.replace_table(table.filter(&mask));
        incomplete_tables.push(cfg.bias.table.clone());
    }

    // 2. Extra uniform removals (e.g. "additionally remove 20% of movies").
    for (name, keep) in &cfg.extra_removals {
        let table = incomplete.table(name).expect("extra removal table").clone();
        let scores = vec![0.0; table.n_rows()];
        let mask = biased_keep_mask(&scores, *keep, 0.0, &mut rng);
        incomplete.replace_table(table.filter(&mask));
        if !incomplete_tables.contains(name) {
            incomplete_tables.push(name.clone());
        }
    }

    // 3. Cascade: drop rows whose FK parents vanished.
    for name in &cfg.cascade {
        let fks: Vec<_> = incomplete
            .foreign_keys()
            .iter()
            .filter(|fk| &fk.child == name)
            .cloned()
            .collect();
        let mut table = incomplete.table(name).expect("cascade table").clone();
        let before = table.n_rows();
        for fk in fks {
            let parent = incomplete.table(&fk.parent).expect("cascade parent");
            let pcol = parent.resolve(&fk.parent_col).unwrap();
            let keys: HashSet<Value> = (0..parent.n_rows())
                .map(|r| parent.value(r, pcol))
                .collect();
            let ccol = table.resolve(&fk.child_col).unwrap();
            let mask: Vec<bool> = (0..table.n_rows())
                .map(|r| keys.contains(&table.value(r, ccol)))
                .collect();
            table = table.filter(&mask);
        }
        if table.n_rows() != before && !incomplete_tables.contains(name) {
            incomplete_tables.push(name.clone());
        }
        incomplete.replace_table(table);
    }

    // 4. Tuple-factor metadata: for every FK whose child lost tuples, attach
    //    a __tf_<child> column to the (incomplete) parent table with the
    //    TRUE pre-removal count, known only for a tf_keep_rate share.
    let fks: Vec<_> = incomplete.foreign_keys().to_vec();
    for fk in fks {
        if !incomplete_tables.contains(&fk.child) {
            continue;
        }
        let complete_child = complete.table(&fk.child).expect("complete child").clone();
        let parent = incomplete.table(&fk.parent).expect("parent").clone();
        let counts =
            restore_db::partner_counts(&parent, &fk.parent_col, &complete_child, &fk.child_col)
                .expect("tuple factor computation");
        let mut col = Column::new(DataType::Int);
        for &c in &counts {
            if rng.random::<f64>() < cfg.tf_keep_rate {
                col.push(&Value::Int(c as i64)).unwrap();
            } else {
                col.push(&Value::Null).unwrap();
            }
        }
        let mut parent = parent;
        parent
            .add_column(Field::new(tf_column_name(&fk.child), DataType::Int), col)
            .expect("tf column");
        incomplete.replace_table(parent);
    }

    Scenario {
        complete: complete.clone(),
        incomplete,
        incomplete_tables,
        bias: cfg.bias.clone(),
        bias_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_synthetic, SyntheticConfig};

    fn base_db() -> Database {
        generate_synthetic(
            &SyntheticConfig {
                n_parent: 300,
                ..Default::default()
            },
            11,
        )
    }

    fn fraction_of(table: &Table, col: &str, value: &str) -> f64 {
        let idx = table.resolve(col).unwrap();
        let hits = (0..table.n_rows())
            .filter(|&r| table.value(r, idx).to_string() == value)
            .count();
        hits as f64 / table.n_rows() as f64
    }

    #[test]
    fn keep_rate_is_exact() {
        let db = base_db();
        let n = db.table("tb").unwrap().n_rows();
        for keep in [0.2, 0.5, 0.8] {
            let cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), keep, 0.5);
            let sc = apply_removal(&db, &cfg);
            let kept = sc.incomplete.table("tb").unwrap().n_rows();
            assert_eq!(kept, (keep * n as f64).round() as usize);
        }
    }

    #[test]
    fn categorical_bias_reduces_target_fraction() {
        let db = base_db();
        let cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.8);
        let sc = apply_removal(&db, &cfg);
        let value = sc.bias_value.clone().unwrap();
        let before = fraction_of(db.table("tb").unwrap(), "b", &value);
        let after = fraction_of(sc.incomplete.table("tb").unwrap(), "b", &value);
        assert!(
            after < before * 0.8,
            "biased removal should deplete '{value}': before {before}, after {after}"
        );
    }

    #[test]
    fn zero_correlation_preserves_distribution() {
        let db = base_db();
        let cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.0);
        let sc = apply_removal(&db, &cfg);
        let value = sc.bias_value.clone().unwrap();
        let before = fraction_of(db.table("tb").unwrap(), "b", &value);
        let after = fraction_of(sc.incomplete.table("tb").unwrap(), "b", &value);
        assert!(
            (after - before).abs() < 0.07,
            "uniform removal shifted {before} -> {after}"
        );
    }

    #[test]
    fn tf_column_is_added_with_nulls() {
        let db = base_db();
        let mut cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), 0.5, 0.5);
        cfg.tf_keep_rate = 0.3;
        let sc = apply_removal(&db, &cfg);
        let ta = sc.incomplete.table("ta").unwrap();
        let tf = ta.column_by_name(&tf_column_name("tb")).unwrap();
        let known = ta.n_rows() - tf.null_count();
        let share = known as f64 / ta.n_rows() as f64;
        assert!((share - 0.3).abs() < 0.1, "tf keep share {share}");
        // Known TFs must equal the true (complete) fan-out.
        let counts = restore_db::partner_counts(ta, "id", db.table("tb").unwrap(), "a_id").unwrap();
        // counts here are against the complete child (db is the original).
        let idx = ta.resolve(&tf_column_name("tb")).unwrap();
        for (r, &count) in counts.iter().enumerate() {
            if let Some(v) = ta.value(r, idx).as_i64() {
                assert_eq!(v as usize, count, "known TF must be the true count");
            }
        }
    }

    #[test]
    fn continuous_bias_lowers_the_mean() {
        // Build a db whose child has a numeric column by reusing ta ids.
        let mut db = Database::new();
        let mut parent = Table::new("p", vec![Field::new("id", DataType::Int)]);
        let mut child = Table::new(
            "c",
            vec![
                Field::new("id", DataType::Int),
                Field::new("p_id", DataType::Int),
                Field::new("x", DataType::Float),
            ],
        );
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..50 {
            parent.push_row(&[Value::Int(i)]).unwrap();
        }
        for i in 0..2000 {
            child
                .push_row(&[
                    Value::Int(i),
                    Value::Int(i % 50),
                    Value::Float(rng.random::<f64>() * 100.0),
                ])
                .unwrap();
        }
        db.add_table(parent);
        db.add_table(child);
        db.add_foreign_key(restore_db::ForeignKey::new("c", "p_id", "p", "id"))
            .unwrap();

        let cfg = RemovalConfig::new(BiasSpec::continuous("c", "x"), 0.5, 0.9);
        let sc = apply_removal(&db, &cfg);
        let before = db
            .table("c")
            .unwrap()
            .column_by_name("x")
            .unwrap()
            .mean()
            .unwrap();
        let after = sc
            .incomplete
            .table("c")
            .unwrap()
            .column_by_name("x")
            .unwrap()
            .mean()
            .unwrap();
        assert!(
            after < before - 10.0,
            "continuous bias should remove large values: {before} -> {after}"
        );
    }

    #[test]
    fn cascade_drops_dangling_children() {
        let db = base_db();
        // Remove parents, cascade children.
        let mut cfg = RemovalConfig::new(BiasSpec::categorical("ta", "a"), 0.5, 0.0);
        cfg.cascade = vec!["tb".to_string()];
        let sc = apply_removal(&db, &cfg);
        let ta = sc.incomplete.table("ta").unwrap();
        let tb = sc.incomplete.table("tb").unwrap();
        let pcol = ta.resolve("id").unwrap();
        let keys: HashSet<Value> = (0..ta.n_rows()).map(|r| ta.value(r, pcol)).collect();
        let ccol = tb.resolve("a_id").unwrap();
        for r in 0..tb.n_rows() {
            assert!(
                keys.contains(&tb.value(r, ccol)),
                "dangling child survived cascade"
            );
        }
        assert!(sc.incomplete_tables.contains(&"tb".to_string()));
    }
}
