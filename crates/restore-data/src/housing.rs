//! The housing dataset (Fig. 4a) — a synthetic stand-in for the Airbnb
//! dump the paper normalizes into `neighborhood`, `apartment`, `landlord`.
//!
//! The raw Airbnb data is not available offline, so this generator plants
//! the cross-table correlations the paper's completions exploit:
//!
//! * apartment **price** is driven by neighborhood population density /
//!   median income plus room type and capacity — so neighborhoods are
//!   useful evidence for completing apartments (setups H1–H3);
//! * landlords are matched to apartments by a price↔seniority tier, and
//!   `response_rate`/`response_time` correlate with `landlord_since` — so
//!   apartments are useful evidence for completing landlords (H4/H5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use restore_db::{DataType, Database, Field, ForeignKey, Table, Value};

use crate::zipf::Zipf;

/// Sizes of the generated housing database.
#[derive(Clone, Debug)]
pub struct HousingConfig {
    pub n_neighborhoods: usize,
    pub n_landlords: usize,
    pub n_apartments: usize,
    pub n_states: usize,
}

impl HousingConfig {
    /// Laptop-scale default (the paper's dataset is ≈8K/360K/500K rows; the
    /// ratios are preserved, the absolute size is scaled down).
    pub fn small() -> Self {
        Self {
            n_neighborhoods: 150,
            n_landlords: 1200,
            n_apartments: 4000,
            n_states: 12,
        }
    }

    /// Uniformly scales all table sizes.
    pub fn scaled(factor: f64) -> Self {
        let s = Self::small();
        Self {
            n_neighborhoods: ((s.n_neighborhoods as f64 * factor) as usize).max(10),
            n_landlords: ((s.n_landlords as f64 * factor) as usize).max(20),
            n_apartments: ((s.n_apartments as f64 * factor) as usize).max(50),
            n_states: s.n_states,
        }
    }
}

impl Default for HousingConfig {
    fn default() -> Self {
        Self::small()
    }
}

const ROOM_TYPES: [&str; 3] = ["Entire home/apt", "Private room", "Shared room"];
const PROPERTY_TYPES: [&str; 4] = ["Apartment", "House", "Condominium", "Loft"];

/// Generates the housing database with FKs
/// `apartment.neighborhood_id → neighborhood.id` and
/// `apartment.landlord_id → landlord.id`.
pub fn generate_housing(cfg: &HousingConfig, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();

    // --- neighborhoods -----------------------------------------------------
    // Each state has an urbanization tier 0..4 that drives density/income.
    let state_tier: Vec<usize> = (0..cfg.n_states).map(|s| s % 4).collect();
    let state_zipf = Zipf::new(cfg.n_states, 1.1);
    let mut neighborhood = Table::new(
        "neighborhood",
        vec![
            Field::new("id", DataType::Int),
            Field::new("state", DataType::Str),
            Field::new("pop_density", DataType::Float),
            Field::new("median_income", DataType::Float),
        ],
    );
    let mut hood_state = Vec::with_capacity(cfg.n_neighborhoods);
    let mut hood_density = Vec::with_capacity(cfg.n_neighborhoods);
    let mut hood_income = Vec::with_capacity(cfg.n_neighborhoods);
    for id in 0..cfg.n_neighborhoods {
        let s = state_zipf.sample(&mut rng);
        let tier = state_tier[s] as f64;
        let density = (200.0 + 6000.0 * tier) * (0.5 + rng.random::<f64>());
        let income = 30_000.0 + 12_000.0 * tier + 8_000.0 * rng.random::<f64>();
        hood_state.push(s);
        hood_density.push(density);
        hood_income.push(income);
        neighborhood
            .push_row(&[
                Value::Int(id as i64),
                Value::str(format!("S{s:02}")),
                Value::Float(density.round()),
                Value::Float(income.round()),
            ])
            .unwrap();
    }
    db.add_table(neighborhood);

    // --- landlords ----------------------------------------------------------
    // Seniority tier: earlier hosts -> slower responses, lower rates, and
    // (via apartment assignment below) cheaper apartments.
    let mut landlord = Table::new(
        "landlord",
        vec![
            Field::new("id", DataType::Int),
            Field::new("landlord_since", DataType::Int),
            Field::new("landlord_response_rate", DataType::Float),
            Field::new("landlord_response_time", DataType::Int),
        ],
    );
    let mut landlord_tier: Vec<usize> = Vec::with_capacity(cfg.n_landlords);
    let mut tier_members: Vec<Vec<usize>> = vec![Vec::new(); 4];
    for id in 0..cfg.n_landlords {
        let tier = rng.random_range(0..4usize);
        let since = 2008 + (tier as i64) * 3 + rng.random_range(0..3i64);
        let response_time =
            (4 - tier as i64).max(1) + if rng.random::<f64>() < 0.2 { 1 } else { 0 };
        let response_rate =
            (104.0 - 9.0 * response_time as f64 - 6.0 * rng.random::<f64>()).clamp(40.0, 100.0);
        landlord_tier.push(tier);
        tier_members[tier].push(id);
        landlord
            .push_row(&[
                Value::Int(id as i64),
                Value::Int(since),
                Value::Float(response_rate.round()),
                Value::Int(response_time.min(4)),
            ])
            .unwrap();
    }
    db.add_table(landlord);

    // --- apartments ----------------------------------------------------------
    let hood_zipf = Zipf::new(cfg.n_neighborhoods, 0.8);
    let mut apartment = Table::new(
        "apartment",
        vec![
            Field::new("id", DataType::Int),
            Field::new("neighborhood_id", DataType::Int),
            Field::new("landlord_id", DataType::Int),
            Field::new("price", DataType::Float),
            Field::new("room_type", DataType::Str),
            Field::new("property_type", DataType::Str),
            Field::new("accommodates", DataType::Int),
        ],
    );
    for id in 0..cfg.n_apartments {
        let h = hood_zipf.sample(&mut rng);
        let tier = state_tier[hood_state[h]] as f64;
        // Room type skews towards entire homes in dense areas.
        let p_entire = 0.35 + 0.12 * tier;
        let u: f64 = rng.random();
        let room_type = if u < p_entire {
            0
        } else if u < p_entire + 0.4 {
            1
        } else {
            2
        };
        // Houses dominate low-density states.
        let p_house = (0.5 - 0.12 * tier).max(0.05);
        let v: f64 = rng.random();
        let property_type = if v < p_house {
            1
        } else if v < p_house + 0.45 {
            0
        } else if v < p_house + 0.45 + 0.3 {
            2
        } else {
            3
        };
        let accommodates = match room_type {
            0 => rng.random_range(2..=8i64),
            1 => rng.random_range(1..=4i64),
            _ => rng.random_range(1..=2i64),
        };
        let room_effect = [420.0, 140.0, 0.0][room_type];
        let price = 120.0
            + 0.035 * hood_density[h]
            + 0.004 * (hood_income[h] - 30_000.0)
            + room_effect
            + 35.0 * accommodates as f64
            + 60.0 * rng.random::<f64>();

        // Landlord: price quartile picks the matching seniority tier with
        // probability 0.75, otherwise a random tier — this is the planted
        // apartment↔landlord correlation H4/H5 rely on.
        let price_tier = ((price - 150.0) / 280.0).clamp(0.0, 3.0) as usize;
        let tier_pick = if rng.random::<f64>() < 0.75 {
            price_tier
        } else {
            rng.random_range(0..4usize)
        };
        let members = if tier_members[tier_pick].is_empty() {
            &landlord_tier // placeholder, handled below
        } else {
            &tier_members[tier_pick]
        };
        let landlord_id = if tier_members[tier_pick].is_empty() {
            rng.random_range(0..cfg.n_landlords)
        } else {
            members[rng.random_range(0..members.len())]
        };

        apartment
            .push_row(&[
                Value::Int(id as i64),
                Value::Int(h as i64),
                Value::Int(landlord_id as i64),
                Value::Float(price.round()),
                Value::str(ROOM_TYPES[room_type]),
                Value::str(PROPERTY_TYPES[property_type]),
                Value::Int(accommodates),
            ])
            .unwrap();
    }
    db.add_table(apartment);

    db.add_foreign_key(ForeignKey::new(
        "apartment",
        "neighborhood_id",
        "neighborhood",
        "id",
    ))
    .unwrap();
    db.add_foreign_key(ForeignKey::new(
        "apartment",
        "landlord_id",
        "landlord",
        "id",
    ))
    .unwrap();
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
    }

    #[test]
    fn schema_matches_figure_4a() {
        let db = generate_housing(&HousingConfig::small(), 1);
        assert_eq!(db.table("neighborhood").unwrap().n_rows(), 150);
        assert_eq!(db.table("landlord").unwrap().n_rows(), 1200);
        assert_eq!(db.table("apartment").unwrap().n_rows(), 4000);
        assert_eq!(db.foreign_keys().len(), 2);
    }

    #[test]
    fn price_correlates_with_density() {
        let db = generate_housing(&HousingConfig::small(), 2);
        let joined = restore_db::query::executor::join_tables(
            &db,
            &["neighborhood".to_string(), "apartment".to_string()],
        )
        .unwrap();
        let d = joined.resolve("pop_density").unwrap();
        let p = joined.resolve("price").unwrap();
        let xs: Vec<f64> = (0..joined.n_rows())
            .map(|r| joined.value(r, d).as_f64().unwrap())
            .collect();
        let ys: Vec<f64> = (0..joined.n_rows())
            .map(|r| joined.value(r, p).as_f64().unwrap())
            .collect();
        let r = pearson(&xs, &ys);
        assert!(r > 0.4, "price/density correlation too weak: {r}");
    }

    #[test]
    fn landlord_seniority_correlates_with_price() {
        let db = generate_housing(&HousingConfig::small(), 3);
        let joined = restore_db::query::executor::join_tables(
            &db,
            &["landlord".to_string(), "apartment".to_string()],
        )
        .unwrap();
        let s = joined.resolve("landlord_since").unwrap();
        let p = joined.resolve("price").unwrap();
        let xs: Vec<f64> = (0..joined.n_rows())
            .map(|r| joined.value(r, s).as_f64().unwrap())
            .collect();
        let ys: Vec<f64> = (0..joined.n_rows())
            .map(|r| joined.value(r, p).as_f64().unwrap())
            .collect();
        let r = pearson(&xs, &ys);
        assert!(r > 0.3, "landlord_since/price correlation too weak: {r}");
    }

    #[test]
    fn response_rate_tracks_response_time() {
        let db = generate_housing(&HousingConfig::small(), 4);
        let l = db.table("landlord").unwrap();
        let rr = l.resolve("landlord_response_rate").unwrap();
        let rt = l.resolve("landlord_response_time").unwrap();
        let xs: Vec<f64> = (0..l.n_rows())
            .map(|r| l.value(r, rt).as_f64().unwrap())
            .collect();
        let ys: Vec<f64> = (0..l.n_rows())
            .map(|r| l.value(r, rr).as_f64().unwrap())
            .collect();
        assert!(pearson(&xs, &ys) < -0.5);
    }

    #[test]
    fn every_fk_resolves() {
        let db = generate_housing(&HousingConfig::scaled(0.2), 5);
        let a = db.table("apartment").unwrap();
        let n = db.table("neighborhood").unwrap().n_rows() as i64;
        let l = db.table("landlord").unwrap().n_rows() as i64;
        for r in 0..a.n_rows() {
            let nid = a.value(r, 1).as_i64().unwrap();
            let lid = a.value(r, 2).as_i64().unwrap();
            assert!(nid >= 0 && nid < n);
            assert!(lid >= 0 && lid < l);
        }
    }
}
