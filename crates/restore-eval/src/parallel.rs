//! Parallel execution of independent experiment cells over a small worker
//! pool (each cell owns its RNG seed, so results are order-independent and
//! reproducible).

use crossbeam::channel;

/// Maps `f` over `jobs` on `workers` threads, preserving input order.
pub fn parallel_map<J, T, F>(jobs: Vec<J>, f: F) -> Vec<T>
where
    J: Send + Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(jobs.len().max(1));
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(&f).collect();
    }
    let (tx, rx) = channel::unbounded::<(usize, &J)>();
    for pair in jobs.iter().enumerate() {
        tx.send(pair).unwrap();
    }
    drop(tx);
    let (out_tx, out_rx) = channel::unbounded::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, job)) = rx.recv() {
                    let _ = out_tx.send((i, f(job)));
                }
            });
        }
        drop(out_tx);
    });
    let mut results: Vec<(usize, T)> = out_rx.into_iter().collect();
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<u64> = (0..50).collect();
        let out = parallel_map(jobs, |&j| j * 2);
        assert_eq!(out, (0..50).map(|j| j * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(empty, |&j: &u32| j).is_empty());
        assert_eq!(parallel_map(vec![7u32], |&j| j + 1), vec![8]);
    }
}
