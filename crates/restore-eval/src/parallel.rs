//! Parallel execution of independent experiment cells.
//!
//! The combinators now live in `restore-util` so the core completion engine
//! shares the same worker pool and determinism contract; this module
//! re-exports them for existing callers.

pub use restore_util::{parallel_map, parallel_map_workers};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let jobs: Vec<u64> = (0..50).collect();
        let out = parallel_map(jobs, |&j| j * 2);
        assert_eq!(out, (0..50).map(|j| j * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(empty, |&j: &u32| j).is_empty());
        assert_eq!(parallel_map(vec![7u32], |&j| j + 1), vec![8]);
    }
}
