//! Regenerates **Fig. 11** (training time per model) and **Fig. 12**
//! (completion time per path, with and without NN replacement).

use restore_data::all_setups;
use restore_eval::experiments::exp4::run_timings;
use restore_eval::report::{print_table, save_json, secs};
use restore_eval::{mean, parse_args};

fn main() {
    let args = parse_args();
    let setups = all_setups();
    let cells = run_timings(&setups, args.scale, args.seed);
    save_json("fig11_fig12_timing", &cells);

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.setup.clone(),
                c.model_class.clone(),
                c.path.clone(),
                secs(c.train_seconds),
                secs(c.completion_seconds),
                secs(c.completion_nn_seconds),
                c.synthesized_tuples.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 11/12 — per-setup timings",
        &[
            "setup",
            "model",
            "path",
            "train",
            "complete",
            "complete+NN",
            "synthesized",
        ],
        &rows,
    );

    // Fig. 11 aggregate: mean training time per dataset × model class.
    let mut rows11 = Vec::new();
    for dataset in ["Housing", "Movies"] {
        for class in ["AR", "SSAR"] {
            let ts: Vec<f64> = cells
                .iter()
                .filter(|c| {
                    c.dataset == dataset && c.model_class == class && c.train_seconds.is_finite()
                })
                .map(|c| c.train_seconds)
                .collect();
            rows11.push(vec![
                dataset.to_string(),
                class.to_string(),
                secs(mean(&ts)),
            ]);
        }
    }
    print_table(
        "Fig. 11 — mean training time",
        &["dataset", "model", "train time"],
        &rows11,
    );

    // Fig. 12 aggregate: mean completion time per dataset × mode.
    let mut rows12 = Vec::new();
    for dataset in ["Housing", "Movies"] {
        for class in ["AR", "SSAR"] {
            let t: Vec<f64> = cells
                .iter()
                .filter(|c| {
                    c.dataset == dataset
                        && c.model_class == class
                        && c.completion_seconds.is_finite()
                })
                .map(|c| c.completion_seconds)
                .collect();
            let tn: Vec<f64> = cells
                .iter()
                .filter(|c| {
                    c.dataset == dataset
                        && c.model_class == class
                        && c.completion_nn_seconds.is_finite()
                })
                .map(|c| c.completion_nn_seconds)
                .collect();
            rows12.push(vec![
                dataset.to_string(),
                class.to_string(),
                secs(mean(&t)),
                format!("{} (+NN replacement)", secs(mean(&tn))),
            ]);
        }
    }
    print_table(
        "Fig. 12 — mean completion time per path",
        &["dataset", "model", "complete", "complete + NN"],
        &rows12,
    );
}
