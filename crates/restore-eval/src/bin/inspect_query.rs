//! Diagnostic tool: runs one Table 1 query under its setup and prints the
//! true / incomplete / completed results side by side.
//!
//! `inspect_query --setup=H2 --query=Q7 [--keep=0.4] [--corr=0.6] [--scale=0.2] [--seed=7]`

use restore_core::{ReStore, RestoreConfig, SelectionStrategy};
use restore_data::{build_scenario, setup_by_id};
use restore_eval::experiments::exp3::query_error;
use restore_eval::harness::eval_train_config;
use restore_eval::queries::queries_for_setup;

fn main() {
    let mut setup_id = "H1".to_string();
    let mut query_id = "Q1".to_string();
    let (mut keep, mut corr, mut scale, mut seed) = (0.4f64, 0.6f64, 0.2f64, 7u64);
    for arg in std::env::args().skip(1) {
        if let Some((k, v)) = arg.split_once('=') {
            match k {
                "--setup" => setup_id = v.to_string(),
                "--query" => query_id = v.to_string(),
                "--keep" => keep = v.parse().unwrap(),
                "--corr" => corr = v.parse().unwrap(),
                "--scale" => scale = v.parse().unwrap(),
                "--seed" => seed = v.parse().unwrap(),
                _ => {}
            }
        }
    }
    let setup = setup_by_id(&setup_id).expect("setup id");
    let wq = queries_for_setup(&setup_id)
        .into_iter()
        .find(|q| q.id == query_id)
        .expect("query id for setup");
    println!("setup {setup_id}, {query_id}: {}", wq.sql);

    let sc = build_scenario(&setup, keep, corr, scale, seed);
    let cfg = RestoreConfig {
        train: eval_train_config(),
        strategy: SelectionStrategy::BestValLoss,
        max_candidates: 3,
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    for t in &sc.incomplete_tables {
        rs.mark_incomplete(t.clone());
        println!(
            "incomplete table: {t} ({} of {} rows kept)",
            sc.incomplete.table(t).unwrap().n_rows(),
            sc.complete.table(t).unwrap().n_rows()
        );
    }

    let truth = restore_db::execute(&sc.complete, &wq.query).unwrap();
    let incomplete = rs.execute_without_completion(&wq.query).unwrap();
    // Train what the query needs, seal, and serve from the snapshot — the
    // same `&self` path a concurrent server uses.
    rs.ensure_query_models(&wq.query.tables, seed)
        .expect("ensure models");
    let rs = rs.seal(seed);
    let completed = rs.execute(&wq.query, seed).expect("completed execution");
    if let Some(m) = rs.selected_model(&sc.bias.table) {
        println!("selected path: {}", m.path().describe());
    }
    for model in rs.trained_models() {
        let per_attr: Vec<String> = model
            .attrs()
            .iter()
            .zip(&model.val_per_attr)
            .map(|(a, l)| format!("{}={:.3}", a.name(), l))
            .collect();
        println!("model {}: {}", model.path().describe(), per_attr.join(" "));
    }
    for (chain, out) in rs.cached_completions() {
        println!(
            "completed chain {chain:?}: {} rows, {} with synthesized parts",
            out.join.n_rows(),
            out.n_synthesized()
        );
        let any = out.any_synthesized();
        let names: Vec<&str> = out.join.fields().iter().map(|f| f.name.as_str()).collect();
        println!("columns: {names:?}");
        let mut shown = 0;
        for (r, &is_syn) in any.iter().enumerate() {
            if is_syn && shown < 3 {
                println!(
                    "syn row {r}: {:?}",
                    out.join
                        .row(r)
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                );
                shown += 1;
            }
        }
    }

    println!(
        "\n{:<24} {:>12} {:>12} {:>12}",
        "group", "truth", "incomplete", "completed"
    );
    if truth.group_cols == 0 {
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>12.2}",
            "(scalar)",
            truth.scalar().unwrap_or(f64::NAN),
            incomplete.scalar().unwrap_or(f64::NAN),
            completed.scalar().unwrap_or(f64::NAN)
        );
    } else {
        let (t, i, c) = (truth.groups(), incomplete.groups(), completed.groups());
        for (k, tv) in &t {
            println!(
                "{:<24} {:>12.2} {:>12.2} {:>12.2}",
                k.join("|"),
                tv[0],
                i.get(k).map(|v| v[0]).unwrap_or(f64::NAN),
                c.get(k).map(|v| v[0]).unwrap_or(f64::NAN)
            );
        }
    }
    println!(
        "\nrel. error incomplete {:.4}, completed {:.4}, improvement {:+.4}",
        query_error(&truth, &incomplete),
        query_error(&truth, &completed),
        query_error(&truth, &incomplete) - query_error(&truth, &completed)
    );
}
