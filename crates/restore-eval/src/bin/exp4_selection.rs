//! Regenerates **Fig. 10**: quality of the model/path selection — all
//! candidate models vs the test-loss selection vs the suspected-bias
//! selection, against the in-hindsight best candidate.

use restore_data::all_setups;
use restore_eval::experiments::exp4::run_fig10;
use restore_eval::parse_args;
use restore_eval::report::{pct, print_table, save_json};

fn main() {
    let args = parse_args();
    let setups = all_setups();
    let cells = run_fig10(&setups, &args.corrs, args.scale, args.seed);
    save_json("fig10_selection", &cells);

    let mut rows = Vec::new();
    for c in &cells {
        let all: Vec<String> = c.all_models.iter().map(|(_, b)| pct(*b)).collect();
        rows.push(vec![
            c.setup.clone(),
            pct(c.removal_correlation),
            all.join(" "),
            pct(c.selected),
            pct(c.selected_suspected),
            pct(c.best),
        ]);
    }
    print_table(
        "Fig. 10 — selection quality (keep rate 40%)",
        &[
            "setup",
            "corr",
            "all models",
            "selected",
            "selected+suspected",
            "best (oracle)",
        ],
        &rows,
    );

    // How often does each strategy pick (near-)optimally?
    let near = |a: f64, b: f64| a.is_finite() && b.is_finite() && a >= b - 0.1;
    let total = cells.iter().filter(|c| c.best.is_finite()).count();
    let sel_ok = cells.iter().filter(|c| near(c.selected, c.best)).count();
    let sus_ok = cells
        .iter()
        .filter(|c| near(c.selected_suspected, c.best))
        .count();
    println!(
        "\nwithin 10pp of the best model: selection {sel_ok}/{total}, selection+suspected bias {sus_ok}/{total}"
    );
}
