//! Regenerates **Fig. 5c**: SSAR vs AR bias-reduction improvement as the
//! fan-out predictability (self-evidence coherence) grows.

use restore_eval::experiments::exp1::run_exp1_fanout;
use restore_eval::parse_args;
use restore_eval::report::{pct, print_table, save_json};

fn main() {
    let args = parse_args();
    let coherences: Vec<f64> = if args.quick {
        vec![0.25, 0.75, 1.0]
    } else {
        vec![0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let cells = run_exp1_fanout(&coherences, 250, args.seed);
    save_json("fig5c_fanout", &cells);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                pct(c.fanout_predictability),
                pct(c.ar_bias_reduction),
                pct(c.ssar_bias_reduction),
                pct(c.improvement),
            ]
        })
        .collect();
    print_table(
        "Fig. 5c — SSAR vs AR under fan-out predictability",
        &[
            "fan-out predictability",
            "AR bias red.",
            "SSAR bias red.",
            "SSAR - AR",
        ],
        &rows,
    );
}
