//! Regenerates **Fig. 9**: distribution of bias reductions for AR vs SSAR
//! models per completion setup — neither class dominates, motivating model
//! selection.

use restore_data::all_setups;
use restore_eval::experiments::exp4::run_fig9;
use restore_eval::report::{pct, print_table, save_json};
use restore_eval::{mean, median, parse_args};

fn main() {
    let args = parse_args();
    let setups = all_setups();
    let cells = run_fig9(&setups, &args.corrs, args.scale, args.seed);
    save_json("fig9_ar_vs_ssar", &cells);

    let mut rows = Vec::new();
    for setup in &setups {
        for class in ["AR", "SSAR"] {
            let brs: Vec<f64> = cells
                .iter()
                .filter(|c| {
                    c.setup == setup.id && c.model_class == class && c.bias_reduction.is_finite()
                })
                .map(|c| c.bias_reduction)
                .collect();
            if brs.is_empty() {
                continue;
            }
            let min = brs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = brs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            rows.push(vec![
                setup.id.to_string(),
                class.to_string(),
                pct(min),
                pct(median(&brs)),
                pct(mean(&brs)),
                pct(max),
            ]);
        }
    }
    print_table(
        "Fig. 9 — AR vs SSAR bias-reduction distributions",
        &["setup", "model", "min", "median", "mean", "max"],
        &rows,
    );

    // Who wins per setup?
    let mut wins_ar = 0;
    let mut wins_ssar = 0;
    for setup in &setups {
        let m = |class: &str| {
            let brs: Vec<f64> = cells
                .iter()
                .filter(|c| {
                    c.setup == setup.id && c.model_class == class && c.bias_reduction.is_finite()
                })
                .map(|c| c.bias_reduction)
                .collect();
            mean(&brs)
        };
        if m("AR") >= m("SSAR") {
            wins_ar += 1;
        } else {
            wins_ssar += 1;
        }
    }
    println!("\nAR better on {wins_ar} setups, SSAR better on {wins_ssar} setups — no clear winner (as in the paper), motivating model selection.");
}
