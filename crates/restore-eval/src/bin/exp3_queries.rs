//! Regenerates **Table 1** (the query workload) and **Fig. 8** (relative
//! error improvements per query over the sweep grid).

use restore_data::all_setups;
use restore_eval::experiments::exp3::run_exp3;
use restore_eval::parse_args;
use restore_eval::report::{pct, print_table, save_json};

fn main() {
    let args = parse_args();
    let setups = all_setups();
    let cells = run_exp3(&setups, &args.keeps, &args.corrs, args.scale, args.seed);
    save_json("fig8_exp3_queries", &cells);

    // Table 1: the workload itself.
    let mut sql_rows = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for c in &cells {
        if seen.insert((c.dataset.clone(), c.query.clone())) {
            sql_rows.push(vec![
                c.dataset.clone(),
                c.setup.clone(),
                c.query.clone(),
                c.sql.clone(),
            ]);
        }
    }
    print_table(
        "Table 1 — query workload",
        &["dataset", "setup", "query", "SQL"],
        &sql_rows,
    );

    // Fig. 8: one block per query; rows keep rate, cols removal corr.
    for dataset in ["Housing", "Movies"] {
        for q in ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10"] {
            let subset: Vec<_> = cells
                .iter()
                .filter(|c| c.dataset == dataset && c.query == q)
                .collect();
            if subset.is_empty() {
                continue;
            }
            let mut rows = Vec::new();
            for &k in &args.keeps {
                let mut row = vec![format!("keep {}", pct(k))];
                for &c in &args.corrs {
                    let v = subset
                        .iter()
                        .find(|x| x.keep_rate == k && x.removal_correlation == c)
                        .map(|x| x.improvement)
                        .unwrap_or(f64::NAN);
                    row.push(pct(v));
                }
                rows.push(row);
            }
            let mut headers = vec!["rel. err. improvement".to_string()];
            headers.extend(args.corrs.iter().map(|c| format!("corr {}", pct(*c))));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            print_table(&format!("Fig. 8 — {dataset}: {q}"), &headers_ref, &rows);
        }
    }

    let improved = cells
        .iter()
        .filter(|c| c.improvement.is_finite() && c.improvement > 0.0)
        .count();
    let finite = cells.iter().filter(|c| c.improvement.is_finite()).count();
    println!("\ncompletion improved {improved}/{finite} query cells");
}
