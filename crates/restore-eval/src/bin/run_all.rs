//! Runs every experiment of the paper's evaluation in sequence, writing
//! all artifacts to `results/`. Expect tens of minutes at default scale;
//! pass `--quick` for a smoke run.

use std::process::Command;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "exp1_bias",
        "exp1_fanout",
        "exp1_confidence",
        "exp2_real",
        "exp3_queries",
        "exp4_models",
        "exp4_selection",
        "exp4_timing",
        "exp_confidence_real",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let started = Instant::now();
    for bin in bins {
        println!("\n########## {bin} ##########");
        let t = Instant::now();
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        println!(
            "[{bin} finished in {:.1}s, status {status}]",
            t.elapsed().as_secs_f64()
        );
        if !status.success() {
            eprintln!("warning: {bin} exited with {status}");
        }
    }
    println!(
        "\nall experiments done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
