//! Regenerates **Fig. 7a** (bias reductions) and **Fig. 7b** (cardinality
//! corrections) for the ten real-world completion setups H1–H5 / M1–M5.

use restore_data::all_setups;
use restore_eval::experiments::exp2::run_exp2;
use restore_eval::parse_args;
use restore_eval::report::{pct, print_table, save_json};

fn main() {
    let args = parse_args();
    let setups = all_setups();
    let cells = run_exp2(
        &setups,
        &args.keeps,
        &args.corrs,
        args.scale,
        args.seed,
        false,
    );
    save_json("fig7_exp2_real", &cells);

    for (title, field) in [
        ("Fig. 7a — bias reductions", 0usize),
        ("Fig. 7b — cardinality corrections", 1usize),
    ] {
        for setup in &setups {
            let mut rows = Vec::new();
            for &k in &args.keeps {
                let mut row = vec![format!("keep {}", pct(k))];
                for &c in &args.corrs {
                    let v = cells
                        .iter()
                        .find(|x| {
                            x.setup == setup.id && x.keep_rate == k && x.removal_correlation == c
                        })
                        .map(|x| {
                            if field == 0 {
                                x.bias_reduction
                            } else {
                                x.cardinality_correction
                            }
                        })
                        .unwrap_or(f64::NAN);
                    row.push(pct(v));
                }
                rows.push(row);
            }
            let mut headers = vec!["".to_string()];
            headers.extend(args.corrs.iter().map(|c| format!("corr {}", pct(*c))));
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            print_table(
                &format!(
                    "{title} — setup {} ({}.{})",
                    setup.id, setup.bias.table, setup.bias.column
                ),
                &headers_ref,
                &rows,
            );
        }
    }
    let failed: Vec<&str> = cells
        .iter()
        .filter(|c| c.error.is_some())
        .map(|c| c.setup.as_str())
        .collect();
    if !failed.is_empty() {
        println!("\ncells with errors: {failed:?}");
    }
}
