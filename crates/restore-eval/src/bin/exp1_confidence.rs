//! Regenerates **Fig. 6** (synthetic confidence intervals at removal
//! correlation 40%) and **Fig. 13** (appendix: all correlations).

use restore_eval::experiments::confidence::run_confidence_synthetic;
use restore_eval::parse_args;
use restore_eval::report::{pct, print_table, save_json};

fn main() {
    let args = parse_args();
    let preds = if args.quick {
        vec![0.25, 1.0]
    } else {
        vec![0.25, 0.5, 0.75, 1.0]
    };
    let cells = run_confidence_synthetic(&preds, &args.keeps, &args.corrs, 250, args.seed);
    save_json("fig6_fig13_confidence_synthetic", &cells);

    for &corr in &args.corrs {
        let mut rows = Vec::new();
        for c in cells.iter().filter(|c| c.removal_correlation == corr) {
            rows.push(vec![
                pct(c.keep_rate),
                pct(c.predictability),
                format!("[{} , {}]", pct(c.ci_lo), pct(c.ci_hi)),
                pct(c.true_fraction),
                format!("[{} , {}]", pct(c.theoretical_min), pct(c.theoretical_max)),
                if c.covered { "yes" } else { "NO" }.to_string(),
            ]);
        }
        let title = if (corr - 0.4).abs() < 1e-9 {
            format!(
                "Fig. 6 — confidence intervals (removal correlation {})",
                pct(corr)
            )
        } else {
            format!(
                "Fig. 13 — confidence intervals (removal correlation {})",
                pct(corr)
            )
        };
        print_table(
            &title,
            &[
                "keep",
                "predictability",
                "95% CI",
                "true fraction",
                "theoretical",
                "covered",
            ],
            &rows,
        );
    }
    let covered = cells.iter().filter(|c| c.covered).count();
    println!(
        "\ncoverage: {covered}/{} cells contain the true fraction",
        cells.len()
    );
}
