//! Regenerates **Fig. 5a** (bias reductions on synthetic data, upper row:
//! predictability panels, lower row: skew panels) and **Fig. 5b** (training
//! loss vs predictability).

use restore_eval::experiments::exp1::{run_exp1, Exp1Config};
use restore_eval::report::{pct, print_table, save_json};
use restore_eval::{mean, parse_args};

fn main() {
    let args = parse_args();
    let mut cfg = Exp1Config {
        keeps: args.keeps.clone(),
        corrs: args.corrs.clone(),
        seed: args.seed,
        ..Default::default()
    };
    if args.quick {
        cfg.predictabilities = vec![0.2, 0.6, 1.0];
        cfg.zipfs = vec![1.0, 2.0, 3.0];
    }
    let cells = run_exp1(&cfg);
    save_json("fig5a_exp1_bias", &cells);

    // Fig. 5a — one table per panel: rows = keep rate, cols = removal corr.
    let panels: Vec<String> = {
        let mut p: Vec<String> = cells.iter().map(|c| c.panel.clone()).collect();
        p.dedup();
        p
    };
    for panel in &panels {
        let mut rows = Vec::new();
        for &k in &cfg.keeps {
            let mut row = vec![format!("keep {}", pct(k))];
            for &c in &cfg.corrs {
                let br = cells
                    .iter()
                    .find(|x| &x.panel == panel && x.keep_rate == k && x.removal_correlation == c)
                    .map(|x| x.bias_reduction)
                    .unwrap_or(f64::NAN);
                row.push(pct(br));
            }
            rows.push(row);
        }
        let mut headers = vec!["bias reduction".to_string()];
        headers.extend(cfg.corrs.iter().map(|c| format!("corr {}", pct(*c))));
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(&format!("Fig. 5a — {panel}"), &headers_ref, &rows);
    }

    // Fig. 5b — mean val loss per predictability (the §5 selection signal).
    let mut rows = Vec::new();
    for &p in &cfg.predictabilities {
        let losses: Vec<f64> = cells
            .iter()
            .filter(|c| c.panel == format!("predictability={p}") && c.val_loss.is_finite())
            .map(|c| c.val_loss as f64)
            .collect();
        let brs: Vec<f64> = cells
            .iter()
            .filter(|c| c.panel == format!("predictability={p}") && c.bias_reduction.is_finite())
            .map(|c| c.bias_reduction)
            .collect();
        rows.push(vec![
            format!("{}", pct(p)),
            format!("{:.3}", mean(&losses)),
            pct(mean(&brs)),
        ]);
    }
    print_table(
        "Fig. 5b — test loss vs predictability",
        &["predictability", "target NLL", "mean bias reduction"],
        &rows,
    );
}
