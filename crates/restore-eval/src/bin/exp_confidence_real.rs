//! Regenerates **Fig. 14** (appendix): confidence intervals for the
//! categorical attributes of the real-world setups H2, H3, M2, M3, M5.

use restore_eval::experiments::confidence::run_confidence_real;
use restore_eval::parse_args;
use restore_eval::report::{pct, print_table, save_json};

fn main() {
    let args = parse_args();
    let setups = ["H2", "H3", "M2", "M3", "M5"];
    let cells = run_confidence_real(&setups, &args.keeps, &args.corrs, args.scale, args.seed);
    save_json("fig14_confidence_real", &cells);

    for setup in setups {
        let mut rows = Vec::new();
        for c in cells.iter().filter(|c| c.panel == setup) {
            rows.push(vec![
                pct(c.keep_rate),
                pct(c.removal_correlation),
                format!("[{} , {}]", pct(c.ci_lo), pct(c.ci_hi)),
                pct(c.true_fraction),
                if c.covered { "yes" } else { "NO" }.to_string(),
            ]);
        }
        print_table(
            &format!("Fig. 14 — setup {setup}"),
            &["keep", "removal corr", "95% CI", "true fraction", "covered"],
            &rows,
        );
    }
    let covered = cells.iter().filter(|c| c.covered).count();
    println!(
        "\ncoverage: {covered}/{} cells contain the true fraction",
        cells.len()
    );
}
