//! # restore-eval — the ReStore evaluation harness
//!
//! Reproduces every table and figure of the paper's §7 (and appendix A):
//!
//! | Paper artifact | Runner | Binary |
//! |---|---|---|
//! | Fig. 5a/5b | [`experiments::exp1::run_exp1`] | `exp1_bias` |
//! | Fig. 5c | [`experiments::exp1::run_exp1_fanout`] | `exp1_fanout` |
//! | Fig. 6 / 13 | [`experiments::confidence::run_confidence_synthetic`] | `exp1_confidence` |
//! | Fig. 7a/7b | [`experiments::exp2::run_exp2`] | `exp2_real` |
//! | Table 1 + Fig. 8 | [`experiments::exp3::run_exp3`] | `exp3_queries` |
//! | Fig. 9 | [`experiments::exp4::run_fig9`] | `exp4_models` |
//! | Fig. 10 | [`experiments::exp4::run_fig10`] | `exp4_selection` |
//! | Fig. 11 / 12 | [`experiments::exp4::run_timings`] | `exp4_timing` |
//! | Fig. 14 | [`experiments::confidence::run_confidence_real`] | `exp_confidence_real` |
//!
//! `run_all` executes everything and persists JSON artifacts under
//! `results/`. The absolute numbers depend on the synthetic data generators
//! (see DESIGN.md §2); the *shapes* — who wins, trends across keep rate and
//! removal correlation — reproduce the paper.

pub mod cli;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod parallel;
pub mod queries;
pub mod report;

pub use cli::{parse_args, EvalArgs};
pub use metrics::{
    bias_reduction, cardinality_correction, error_improvement, group_relative_error, mean, median,
    relative_error,
};
pub use parallel::parallel_map;
