//! Minimal CLI argument parsing shared by the experiment binaries.

/// Common sweep parameters, overridable via `--key=value` flags.
#[derive(Clone, Debug)]
pub struct EvalArgs {
    /// Dataset scale factor for the housing/movies generators.
    pub scale: f64,
    pub seed: u64,
    pub keeps: Vec<f64>,
    pub corrs: Vec<f64>,
    /// `--quick` halves the grid for smoke runs.
    pub quick: bool,
    /// Worker threads per training run (`--train-workers=N`, `0` = one per
    /// hardware thread). Defaults to 1: the harness parallelizes over
    /// experiment cells, and training results never depend on this value.
    pub train_workers: usize,
}

impl Default for EvalArgs {
    fn default() -> Self {
        Self {
            scale: 0.3,
            seed: 7,
            keeps: vec![0.2, 0.4, 0.6, 0.8],
            corrs: vec![0.2, 0.4, 0.6, 0.8],
            quick: false,
            train_workers: 1,
        }
    }
}

fn parse_list(s: &str) -> Vec<f64> {
    s.split(',').filter_map(|v| v.trim().parse().ok()).collect()
}

/// Parses `std::env::args()`; unknown flags abort with usage help.
pub fn parse_args() -> EvalArgs {
    let mut args = EvalArgs::default();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            args.quick = true;
            continue;
        }
        let Some((key, value)) = arg.split_once('=') else {
            eprintln!(
                "usage: [--quick] [--scale=0.3] [--seed=7] [--keeps=0.2,0.4] [--corrs=0.2,0.8] [--train-workers=1]"
            );
            std::process::exit(2);
        };
        match key {
            "--scale" => args.scale = value.parse().unwrap_or(args.scale),
            "--seed" => args.seed = value.parse().unwrap_or(args.seed),
            "--keeps" => args.keeps = parse_list(value),
            "--corrs" => args.corrs = parse_list(value),
            "--train-workers" => args.train_workers = value.parse().unwrap_or(args.train_workers),
            _ => {
                eprintln!("unknown flag {key}");
                std::process::exit(2);
            }
        }
    }
    if args.quick {
        args.keeps = vec![0.2, 0.8];
        args.corrs = vec![0.2, 0.8];
    }
    crate::harness::set_train_workers(args.train_workers);
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_parsing() {
        assert_eq!(parse_list("0.2,0.4"), vec![0.2, 0.4]);
        assert_eq!(parse_list("1"), vec![1.0]);
        assert!(parse_list("nope").is_empty());
    }
}
