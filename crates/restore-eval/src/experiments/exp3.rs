//! Exp. 3 — end-to-end query processing (§7.4): the Table 1 workload and
//! the Fig. 8 relative-error improvements.

use restore_util::impl_to_json;

use restore_core::{ReStore, RestoreConfig, SelectionStrategy};
use restore_data::{build_scenario, Setup};
use restore_db::QueryResult;

use crate::harness::{eval_completer_config, eval_train_config};
use crate::metrics::{group_relative_error, relative_error};
use crate::parallel::parallel_map;
use crate::queries::queries_for_setup;

/// One (query, keep rate, removal correlation) cell of Fig. 8.
#[derive(Clone, Debug)]
pub struct Exp3Cell {
    pub dataset: String,
    pub setup: String,
    pub query: String,
    pub sql: String,
    pub keep_rate: f64,
    pub removal_correlation: f64,
    /// Average relative error querying the incomplete data directly.
    pub err_incomplete: f64,
    /// Average relative error after ReStore's completion.
    pub err_completed: f64,
    /// `err_incomplete − err_completed` — the y-axis of Fig. 8.
    pub improvement: f64,
    pub error: Option<String>,
}
impl_to_json!(Exp3Cell {
    dataset,
    setup,
    query,
    sql,
    keep_rate,
    removal_correlation,
    err_incomplete,
    err_completed,
    improvement,
    error
});

/// Relative error of a query result against the ground truth: plain for
/// scalar aggregates, averaged over true groups for group-by queries.
pub fn query_error(truth: &QueryResult, estimate: &QueryResult) -> f64 {
    if truth.group_cols == 0 {
        match (truth.scalar(), estimate.scalar()) {
            (Some(t), Some(e)) => relative_error(e, t),
            (Some(_), None) => 1.0,
            _ => 0.0,
        }
    } else {
        group_relative_error(&truth.groups(), &estimate.groups(), 0)
    }
}

/// Runs the Table 1 workload for the given setups over the sweep grid.
pub fn run_exp3(
    setups: &[Setup],
    keeps: &[f64],
    corrs: &[f64],
    scale: f64,
    seed: u64,
) -> Vec<Exp3Cell> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for setup in setups {
        for &k in keeps {
            for &c in corrs {
                jobs.push((setup.clone(), k, c, id));
                id += 1;
            }
        }
    }
    let results: Vec<Vec<Exp3Cell>> = parallel_map(jobs, |(setup, keep, corr, id)| {
        run_exp3_cell(
            setup,
            *keep,
            *corr,
            scale,
            seed.wrapping_add(id.wrapping_mul(104729)),
        )
    });
    results.into_iter().flatten().collect()
}

/// Runs both Table 1 queries of one setup on one scenario.
pub fn run_exp3_cell(setup: &Setup, keep: f64, corr: f64, scale: f64, seed: u64) -> Vec<Exp3Cell> {
    let sc = build_scenario(setup, keep, corr, scale, seed);
    let dataset = if setup.id.starts_with('H') {
        "Housing"
    } else {
        "Movies"
    };

    let cfg = RestoreConfig {
        train: eval_train_config(),
        strategy: SelectionStrategy::BestValLoss,
        max_candidates: 3,
        completer: eval_completer_config(),
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    for t in &sc.incomplete_tables {
        rs.mark_incomplete(t.clone());
    }

    // Build phase: train the candidate models every workload query needs,
    // then seal into an immutable snapshot — queries are then served
    // through the same `&self` path a concurrent server would use.
    let queries = queries_for_setup(setup.id);
    let train_errors: Vec<Option<String>> = queries
        .iter()
        .map(|wq| match rs.ensure_query_models(&wq.query.tables, seed) {
            Ok(last) => last.map(|e| e.to_string()),
            Err(e) => Some(e.to_string()),
        })
        .collect();
    let snap = rs.seal(seed);

    queries
        .into_iter()
        .zip(train_errors)
        .map(|(wq, train_err)| {
            let mut cell = Exp3Cell {
                dataset: dataset.to_string(),
                setup: setup.id.to_string(),
                query: wq.id.to_string(),
                sql: wq.sql.to_string(),
                keep_rate: keep,
                removal_correlation: corr,
                err_incomplete: f64::NAN,
                err_completed: f64::NAN,
                improvement: f64::NAN,
                error: None,
            };
            let truth = match restore_db::execute(&sc.complete, &wq.query) {
                Ok(t) => t,
                Err(e) => {
                    cell.error = Some(format!("truth: {e}"));
                    return cell;
                }
            };
            let incomplete = match snap.execute_without_completion(&wq.query) {
                Ok(r) => r,
                Err(e) => {
                    cell.error = Some(format!("incomplete: {e}"));
                    return cell;
                }
            };
            cell.err_incomplete = query_error(&truth, &incomplete);
            match snap.execute(&wq.query, seed) {
                Ok(r) => {
                    cell.err_completed = query_error(&truth, &r);
                    cell.improvement = cell.err_incomplete - cell.err_completed;
                }
                Err(e) => {
                    // Only a missing model is explained by a build-time
                    // training failure; other errors stand on their own.
                    let msg = match (&e, train_err) {
                        (restore_core::CoreError::NoModel(_), Some(t)) => t,
                        _ => e.to_string(),
                    };
                    cell.error = Some(format!("completed: {msg}"));
                }
            }
            cell
        })
        .collect()
}
