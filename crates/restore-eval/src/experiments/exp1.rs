//! Exp. 1 — data completion on synthetic data (§7.2): Fig. 5a (bias
//! reductions vs predictability / skew), Fig. 5b (training loss vs
//! predictability), Fig. 5c (SSAR vs AR under fan-out predictability).

use restore_util::impl_to_json;

use crate::harness::{
    complete_synthetic, eval_completer_config, eval_train_config, eval_train_config_ssar,
    scenario_stat, synthetic_scenario, train_synthetic_model,
};
use crate::metrics::bias_reduction;
use crate::parallel::parallel_map;

/// One cell of Fig. 5a / 5b.
#[derive(Clone, Debug)]
pub struct Exp1Cell {
    /// Panel: `predictability=0.6` or `zipf=1.5`.
    pub panel: String,
    pub keep_rate: f64,
    pub removal_correlation: f64,
    pub bias_reduction: f64,
    /// Held-out NLL of the target attribute (Fig. 5b uses this).
    pub val_loss: f32,
    /// Final training loss.
    pub train_loss: f32,
}
impl_to_json!(Exp1Cell {
    panel,
    keep_rate,
    removal_correlation,
    bias_reduction,
    val_loss,
    train_loss
});

/// Configuration of the Fig. 5a sweep.
#[derive(Clone, Debug)]
pub struct Exp1Config {
    pub predictabilities: Vec<f64>,
    pub zipfs: Vec<f64>,
    pub keeps: Vec<f64>,
    pub corrs: Vec<f64>,
    pub n_parent: usize,
    pub seed: u64,
}

impl Default for Exp1Config {
    fn default() -> Self {
        Self {
            predictabilities: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            zipfs: vec![1.0, 1.5, 2.0, 2.5, 3.0],
            keeps: vec![0.2, 0.4, 0.6, 0.8],
            corrs: vec![0.2, 0.4, 0.6, 0.8],
            n_parent: 200,
            seed: 7,
        }
    }
}

enum Panel {
    Predictability(f64),
    Zipf(f64),
}

/// Runs the Fig. 5a/5b sweep and returns one row per cell.
pub fn run_exp1(cfg: &Exp1Config) -> Vec<Exp1Cell> {
    let mut jobs: Vec<(Panel, f64, f64, u64)> = Vec::new();
    let mut id = 0u64;
    for &p in &cfg.predictabilities {
        for &k in &cfg.keeps {
            for &c in &cfg.corrs {
                jobs.push((Panel::Predictability(p), k, c, id));
                id += 1;
            }
        }
    }
    for &z in &cfg.zipfs {
        for &k in &cfg.keeps {
            for &c in &cfg.corrs {
                jobs.push((Panel::Zipf(z), k, c, id));
                id += 1;
            }
        }
    }
    let n_parent = cfg.n_parent;
    let base_seed = cfg.seed;
    parallel_map(jobs, |(panel, keep, corr, id)| {
        let seed = base_seed.wrapping_add(id.wrapping_mul(0x9e37_79b9));
        let (pred, zipf, label) = match panel {
            Panel::Predictability(p) => (*p, None, format!("predictability={p}")),
            // The skew panels fix predictability at 80% (as in the paper).
            Panel::Zipf(z) => (0.8, Some(*z), format!("zipf={z}")),
        };
        let sc = synthetic_scenario(pred, zipf, None, n_parent, *keep, *corr, seed);
        let cell = |br: f64, val: f32, train: f32| Exp1Cell {
            panel: label.clone(),
            keep_rate: *keep,
            removal_correlation: *corr,
            bias_reduction: br,
            val_loss: val,
            train_loss: train,
        };
        let model = match train_synthetic_model(&sc, &eval_train_config(), seed) {
            Ok(m) => m,
            Err(_) => return cell(f64::NAN, f32::NAN, f32::NAN),
        };
        let out = match complete_synthetic(&sc, &model, eval_completer_config(), seed) {
            Ok(o) => o,
            Err(_) => return cell(f64::NAN, model.target_val_loss(), f32::NAN),
        };
        let truth = scenario_stat(&sc, sc.complete.table("tb").unwrap(), false);
        let inc = scenario_stat(&sc, sc.incomplete.table("tb").unwrap(), false);
        let comp = scenario_stat(&sc, &out.join, true);
        cell(
            bias_reduction(truth, inc, comp),
            model.target_val_loss(),
            model.train_losses.last().copied().unwrap_or(f32::NAN),
        )
    })
}

/// One point of Fig. 5c.
#[derive(Clone, Debug)]
pub struct FanoutCell {
    pub fanout_predictability: f64,
    pub ar_bias_reduction: f64,
    pub ssar_bias_reduction: f64,
    /// `ssar − ar` — the y-axis of Fig. 5c.
    pub improvement: f64,
}
impl_to_json!(FanoutCell {
    fanout_predictability,
    ar_bias_reduction,
    ssar_bias_reduction,
    improvement
});

/// Runs the Fig. 5c sweep: `B` follows a latent per-parent group value that
/// only self-evidence (available siblings) reveals; plain AR models cannot
/// exploit it, SSAR models can.
pub fn run_exp1_fanout(coherences: &[f64], n_parent: usize, seed: u64) -> Vec<FanoutCell> {
    let jobs: Vec<(f64, u64)> = coherences
        .iter()
        .enumerate()
        .map(|(i, &q)| (q, seed.wrapping_add(i as u64 * 31)))
        .collect();
    parallel_map(jobs, |(q, s)| {
        let sc = synthetic_scenario(0.0, None, Some(*q), n_parent, 0.5, 0.5, *s);
        let truth = scenario_stat(&sc, sc.complete.table("tb").unwrap(), false);
        let inc = scenario_stat(&sc, sc.incomplete.table("tb").unwrap(), false);
        let br_of = |train: &restore_core::TrainConfig| -> f64 {
            let Ok(model) = train_synthetic_model(&sc, train, *s) else {
                return f64::NAN;
            };
            let Ok(out) = complete_synthetic(&sc, &model, eval_completer_config(), *s) else {
                return f64::NAN;
            };
            bias_reduction(truth, inc, scenario_stat(&sc, &out.join, true))
        };
        let ar = br_of(&eval_train_config());
        let ssar = br_of(&eval_train_config_ssar());
        FanoutCell {
            fanout_predictability: *q,
            ar_bias_reduction: ar,
            ssar_bias_reduction: ssar,
            improvement: ssar - ar,
        }
    })
}
