//! Exp. 2 — data completion on the real-world schemas (§7.3): Fig. 7a
//! (bias reductions per setup) and Fig. 7b (cardinality corrections).
//!
//! Following §7.2 ("unless otherwise stated, we report the metrics for an
//! optimal model and path selection"), each cell tries the candidate
//! completion paths and reports the best completion; the test-loss
//! selection is evaluated separately in Fig. 10.

use restore_util::impl_to_json;

use restore_core::{ReStore, RestoreConfig, SelectionStrategy};
use restore_data::{build_scenario, Setup};

use crate::harness::{eval_completer_config, eval_train_config, stat_of};
use crate::metrics::{bias_reduction, cardinality_correction};
use crate::parallel::parallel_map;

/// One cell of Fig. 7a/7b.
#[derive(Clone, Debug)]
pub struct Exp2Cell {
    pub setup: String,
    pub keep_rate: f64,
    pub removal_correlation: f64,
    /// Bias reduction under optimal path selection (as reported in Fig. 7).
    pub bias_reduction: f64,
    pub cardinality_correction: f64,
    /// The path achieving the reported bias reduction.
    pub path: String,
    /// Bias reduction of every candidate path (diagnostics / Fig. 10 input).
    pub per_path: Vec<(String, f64)>,
    pub error: Option<String>,
}
impl_to_json!(Exp2Cell {
    setup,
    keep_rate,
    removal_correlation,
    bias_reduction,
    cardinality_correction,
    path,
    per_path,
    error
});

/// Runs the Fig. 7 sweep over the given setups × keep rates × correlations.
pub fn run_exp2(
    setups: &[Setup],
    keeps: &[f64],
    corrs: &[f64],
    scale: f64,
    seed: u64,
    ssar: bool,
) -> Vec<Exp2Cell> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for setup in setups {
        for &k in keeps {
            for &c in corrs {
                jobs.push((setup.clone(), k, c, id));
                id += 1;
            }
        }
    }
    parallel_map(jobs, |(setup, keep, corr, id)| {
        run_exp2_cell(
            setup,
            *keep,
            *corr,
            scale,
            seed.wrapping_add(id.wrapping_mul(7919)),
            ssar,
        )
    })
}

/// Runs one (setup, keep rate, removal correlation) cell, trying up to
/// three candidate paths and keeping the best completion.
pub fn run_exp2_cell(
    setup: &Setup,
    keep: f64,
    corr: f64,
    scale: f64,
    seed: u64,
    ssar: bool,
) -> Exp2Cell {
    let sc = build_scenario(setup, keep, corr, scale, seed);
    let mut cell = Exp2Cell {
        setup: setup.id.to_string(),
        keep_rate: keep,
        removal_correlation: corr,
        bias_reduction: f64::NAN,
        cardinality_correction: f64::NAN,
        path: String::new(),
        per_path: Vec::new(),
        error: None,
    };

    let cfg = RestoreConfig {
        train: if ssar {
            eval_train_config().ssar()
        } else {
            eval_train_config()
        },
        strategy: SelectionStrategy::Shortest,
        completer: eval_completer_config(),
        ..RestoreConfig::default()
    };
    let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
    for t in &sc.incomplete_tables {
        rs.mark_incomplete(t.clone());
    }

    let target = &sc.bias.table;
    let value = sc.bias_value.as_deref();
    let truth = stat_of(sc.complete.table(target).unwrap(), &sc.bias.column, value);
    let inc = stat_of(sc.incomplete.table(target).unwrap(), &sc.bias.column, value);
    let n_complete = sc.complete.table(target).unwrap().n_rows();
    let n_incomplete = sc.incomplete.table(target).unwrap().n_rows();

    let candidates: Vec<Vec<String>> = rs
        .candidate_paths(target)
        .into_iter()
        .take(3)
        .map(|p| p.tables().to_vec())
        .collect();
    if candidates.is_empty() {
        cell.error = Some("no completion path".into());
        return cell;
    }

    let mut last_err = None;
    for tables in candidates {
        if let Err(e) = rs.set_selected_path(target, &tables, seed) {
            last_err = Some(e.to_string());
            continue;
        }
        let completed = match rs.completed_table(target, seed) {
            Ok(t) => t,
            Err(e) => {
                last_err = Some(e.to_string());
                continue;
            }
        };
        let comp = stat_of(&completed, &sc.bias.column, value);
        let br = bias_reduction(truth, inc, comp);
        let cc = cardinality_correction(n_complete, n_incomplete, completed.n_rows());
        cell.per_path.push((tables.join("→"), br));
        if cell.bias_reduction.is_nan() || br > cell.bias_reduction {
            cell.bias_reduction = br;
            cell.cardinality_correction = cc;
            cell.path = tables.join("→");
        }
    }
    if cell.bias_reduction.is_nan() {
        cell.error = last_err.or(Some("all candidate paths failed".into()));
    }
    cell
}
