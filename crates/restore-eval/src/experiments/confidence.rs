//! Confidence-interval experiments: Fig. 6 (synthetic, removal correlation
//! 40%), Fig. 13 (synthetic, all correlations) and Fig. 14 (real-world
//! categorical setups).

use restore_util::impl_to_json;

use restore_core::{
    confidence_interval, ConfidenceQuery, ReStore, RestoreConfig, SelectionStrategy,
};
use restore_data::{build_scenario, setup_by_id};

use crate::harness::{
    complete_synthetic, eval_completer_config, eval_train_config, scenario_stat,
    synthetic_scenario, train_synthetic_model,
};
use crate::parallel::parallel_map;

/// One confidence cell: predicted bounds vs the true fraction.
#[derive(Clone, Debug)]
pub struct ConfidenceCell {
    pub panel: String,
    pub predictability: f64,
    pub keep_rate: f64,
    pub removal_correlation: f64,
    pub ci_lo: f64,
    pub ci_hi: f64,
    pub estimate: f64,
    pub true_fraction: f64,
    pub theoretical_min: f64,
    pub theoretical_max: f64,
    /// Whether the true fraction falls inside the predicted interval.
    pub covered: bool,
}
impl_to_json!(ConfidenceCell {
    panel,
    predictability,
    keep_rate,
    removal_correlation,
    ci_lo,
    ci_hi,
    estimate,
    true_fraction,
    theoretical_min,
    theoretical_max,
    covered
});

/// Runs the synthetic confidence sweep (Figs. 6 and 13).
pub fn run_confidence_synthetic(
    predictabilities: &[f64],
    keeps: &[f64],
    corrs: &[f64],
    n_parent: usize,
    seed: u64,
) -> Vec<ConfidenceCell> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for &p in predictabilities {
        for &k in keeps {
            for &c in corrs {
                jobs.push((p, k, c, id));
                id += 1;
            }
        }
    }
    parallel_map(jobs, |(p, k, c, id)| {
        let s = seed.wrapping_add(id.wrapping_mul(0x517c_c1e5));
        let sc = synthetic_scenario(*p, None, None, n_parent, *k, *c, s);
        let truth = scenario_stat(&sc, sc.complete.table("tb").unwrap(), false);
        let fail = |msg: &str| ConfidenceCell {
            panel: format!("failed: {msg}"),
            predictability: *p,
            keep_rate: *k,
            removal_correlation: *c,
            ci_lo: f64::NAN,
            ci_hi: f64::NAN,
            estimate: f64::NAN,
            true_fraction: truth,
            theoretical_min: f64::NAN,
            theoretical_max: f64::NAN,
            covered: false,
        };
        let Ok(model) = train_synthetic_model(&sc, &eval_train_config(), s) else {
            return fail("train");
        };
        let Ok(out) = complete_synthetic(&sc, &model, eval_completer_config(), s) else {
            return fail("complete");
        };
        let q = ConfidenceQuery::CountFraction {
            table: "tb".into(),
            column: "b".into(),
            value: sc.bias_value.clone().unwrap_or_default(),
        };
        let Ok(ci) = confidence_interval(&model, &sc.incomplete, &out, &q, 0.95) else {
            return fail("ci");
        };
        let (tmin, tmax) = ci.theoretical.unwrap_or((f64::NAN, f64::NAN));
        ConfidenceCell {
            panel: "synthetic".into(),
            predictability: *p,
            keep_rate: *k,
            removal_correlation: *c,
            ci_lo: ci.lo,
            ci_hi: ci.hi,
            estimate: ci.estimate,
            true_fraction: truth,
            theoretical_min: tmin,
            theoretical_max: tmax,
            covered: ci.lo - 0.02 <= truth && truth <= ci.hi + 0.02,
        }
    })
}

/// Runs the real-world confidence sweep (Fig. 14) over the categorical
/// setups H2, H3, M2, M3, M5.
pub fn run_confidence_real(
    setups: &[&str],
    keeps: &[f64],
    corrs: &[f64],
    scale: f64,
    seed: u64,
) -> Vec<ConfidenceCell> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for &s in setups {
        for &k in keeps {
            for &c in corrs {
                jobs.push((s.to_string(), k, c, id));
                id += 1;
            }
        }
    }
    parallel_map(jobs, |(setup_id, k, c, id)| {
        let s = seed.wrapping_add(id.wrapping_mul(0xfa14_70e5));
        let setup = setup_by_id(setup_id).expect("known setup id");
        let sc = build_scenario(&setup, *k, *c, scale, s);
        let value = sc.bias_value.clone().unwrap_or_default();
        let truth = scenario_stat(&sc, sc.complete.table(&sc.bias.table).unwrap(), false);
        let fail = |msg: &str| ConfidenceCell {
            panel: format!("{setup_id} failed: {msg}"),
            predictability: f64::NAN,
            keep_rate: *k,
            removal_correlation: *c,
            ci_lo: f64::NAN,
            ci_hi: f64::NAN,
            estimate: f64::NAN,
            true_fraction: truth,
            theoretical_min: f64::NAN,
            theoretical_max: f64::NAN,
            covered: false,
        };
        let cfg = RestoreConfig {
            train: eval_train_config(),
            strategy: SelectionStrategy::BestValLoss,
            max_candidates: 2,
            completer: eval_completer_config(),
            ..RestoreConfig::default()
        };
        let mut rs = ReStore::new(sc.incomplete.clone(), cfg);
        for t in &sc.incomplete_tables {
            rs.mark_incomplete(t.clone());
        }
        let q = ConfidenceQuery::CountFraction {
            table: sc.bias.table.clone(),
            column: sc.bias.column.clone(),
            value: value.clone(),
        };
        let ci = match rs.confidence(std::slice::from_ref(&sc.bias.table), &q, 0.95, s) {
            Ok(ci) => ci,
            Err(e) => return fail(&e.to_string()),
        };
        let (tmin, tmax) = ci.theoretical.unwrap_or((f64::NAN, f64::NAN));
        ConfidenceCell {
            panel: setup_id.clone(),
            predictability: f64::NAN,
            keep_rate: *k,
            removal_correlation: *c,
            ci_lo: ci.lo,
            ci_hi: ci.hi,
            estimate: ci.estimate,
            true_fraction: truth,
            theoretical_min: tmin,
            theoretical_max: tmax,
            covered: ci.lo - 0.02 <= truth && truth <= ci.hi + 0.02,
        }
    })
}
