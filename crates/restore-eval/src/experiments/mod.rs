//! Experiment runners, one module per paper experiment.

pub mod confidence;
pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp4;
