//! Exp. 4 — accuracy and performance aspects (§7.5): Fig. 9 (AR vs SSAR
//! bias-reduction distributions), Fig. 10 (model/path selection quality),
//! Fig. 11 (training time) and Fig. 12 (completion time per path).

use std::time::Instant;

use restore_util::impl_to_json;

use restore_core::{
    enumerate_paths, Completer, CompleterConfig, CompletionModel, ReplacementMode,
    SchemaAnnotation, TrainConfig,
};
use restore_data::{build_scenario, Scenario, Setup};

use crate::harness::{eval_completer_config, eval_train_config, stat_of};
use crate::metrics::bias_reduction;
use crate::parallel::parallel_map;

/// One completed candidate: setup × model class × correlation → bias red.
#[derive(Clone, Debug)]
pub struct Fig9Cell {
    pub setup: String,
    pub model_class: String,
    pub removal_correlation: f64,
    pub bias_reduction: f64,
}
impl_to_json!(Fig9Cell {
    setup,
    model_class,
    removal_correlation,
    bias_reduction
});

/// Trains a model on a scenario path and measures the bias reduction of
/// the completed biased attribute. Returns `(bias_reduction, model)`.
fn complete_and_score(
    sc: &Scenario,
    model: &CompletionModel,
    seed: u64,
    replacement: ReplacementMode,
) -> f64 {
    let ann = SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str));
    let cfg = CompleterConfig {
        replacement,
        ..eval_completer_config()
    };
    let completer = Completer::new(&sc.incomplete, &ann).with_config(cfg);
    let Ok(out) = completer.complete(model, seed ^ 0xf19) else {
        return f64::NAN;
    };
    let target = &sc.bias.table;
    let value = sc.bias_value.as_deref();
    let truth = stat_of(sc.complete.table(target).unwrap(), &sc.bias.column, value);
    let inc = stat_of(sc.incomplete.table(target).unwrap(), &sc.bias.column, value);
    let comp = stat_of(&out.join, &format!("{target}.{}", sc.bias.column), value);
    bias_reduction(truth, inc, comp)
}

fn first_path_model(
    sc: &Scenario,
    train: &TrainConfig,
    max_len: usize,
    seed: u64,
) -> Option<CompletionModel> {
    let ann = SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str));
    let paths = enumerate_paths(&sc.incomplete, &ann, &sc.bias.table, max_len);
    for p in paths {
        if let Ok(m) = CompletionModel::train(&sc.incomplete, &ann, p, train, seed) {
            return Some(m);
        }
    }
    None
}

/// Runs the Fig. 9 comparison: AR vs SSAR bias reductions per setup.
pub fn run_fig9(setups: &[Setup], corrs: &[f64], scale: f64, seed: u64) -> Vec<Fig9Cell> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for setup in setups {
        for &c in corrs {
            for ssar in [false, true] {
                jobs.push((setup.clone(), c, ssar, id));
                id += 1;
            }
        }
    }
    parallel_map(jobs, |(setup, corr, ssar, id)| {
        let s = seed.wrapping_add(id.wrapping_mul(6151));
        let sc = build_scenario(setup, 0.4, *corr, scale, s);
        let train = if *ssar {
            eval_train_config().ssar()
        } else {
            eval_train_config()
        };
        let br = first_path_model(&sc, &train, 5, s)
            .map(|m| complete_and_score(&sc, &m, s, ReplacementMode::Auto))
            .unwrap_or(f64::NAN);
        Fig9Cell {
            setup: setup.id.to_string(),
            model_class: if *ssar { "SSAR" } else { "AR" }.to_string(),
            removal_correlation: *corr,
            bias_reduction: br,
        }
    })
}

/// One Fig. 10 cell: all candidate models plus the two selection answers.
#[derive(Clone, Debug)]
pub struct Fig10Cell {
    pub setup: String,
    pub removal_correlation: f64,
    /// Bias reduction of every candidate path ("All Models" scatter).
    pub all_models: Vec<(String, f64)>,
    /// Candidate picked by test-loss selection ("Model Selection").
    pub selected: f64,
    /// Candidate picked with the suspected-bias hint.
    pub selected_suspected: f64,
    /// The best candidate in hindsight (oracle).
    pub best: f64,
}
impl_to_json!(Fig10Cell {
    setup,
    removal_correlation,
    all_models,
    selected,
    selected_suspected,
    best
});

/// Runs the Fig. 10 selection-quality sweep (keep rate fixed at 40%).
pub fn run_fig10(setups: &[Setup], corrs: &[f64], scale: f64, seed: u64) -> Vec<Fig10Cell> {
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for setup in setups {
        for &c in corrs {
            jobs.push((setup.clone(), c, id));
            id += 1;
        }
    }
    parallel_map(jobs, |(setup, corr, id)| {
        let s = seed.wrapping_add(id.wrapping_mul(12289));
        let sc = build_scenario(setup, 0.4, *corr, scale, s);
        let ann =
            SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str));
        let paths = enumerate_paths(&sc.incomplete, &ann, &sc.bias.table, 5);
        let train = eval_train_config();

        // Statistics for the suspected-bias score: the removal depletes the
        // biased attribute, so the completion should *raise* it.
        let value = sc.bias_value.as_deref();
        let inc_stat = stat_of(
            sc.incomplete.table(&sc.bias.table).unwrap(),
            &sc.bias.column,
            value,
        );

        let mut all = Vec::new();
        let mut by_val_loss: Option<(f32, f64)> = None;
        let mut by_suspected: Option<(f64, f64)> = None;
        for p in paths.into_iter().take(3) {
            let Ok(m) = CompletionModel::train(&sc.incomplete, &ann, p, &train, s) else {
                continue;
            };
            let br = complete_and_score(&sc, &m, s, ReplacementMode::Auto);
            if br.is_nan() {
                continue;
            }
            // Suspected-bias score: shift of the statistic upwards.
            let ann2 =
                SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str));
            let completer = Completer::new(&sc.incomplete, &ann2);
            let shift = completer
                .complete(&m, s ^ 0x5a5a)
                .map(|out| {
                    stat_of(
                        &out.join,
                        &format!("{}.{}", sc.bias.table, sc.bias.column),
                        value,
                    ) - inc_stat
                })
                .unwrap_or(f64::NEG_INFINITY);
            all.push((m.path().describe(), br));
            if by_val_loss.is_none_or(|(v, _)| m.target_val_loss() < v) {
                by_val_loss = Some((m.target_val_loss(), br));
            }
            if by_suspected.is_none_or(|(sc_, _)| shift > sc_) {
                by_suspected = Some((shift, br));
            }
        }
        let best = all
            .iter()
            .map(|(_, b)| *b)
            .fold(f64::NEG_INFINITY, f64::max);
        Fig10Cell {
            setup: setup.id.to_string(),
            removal_correlation: *corr,
            all_models: all,
            selected: by_val_loss.map(|(_, b)| b).unwrap_or(f64::NAN),
            selected_suspected: by_suspected.map(|(_, b)| b).unwrap_or(f64::NAN),
            best: if best.is_finite() { best } else { f64::NAN },
        }
    })
}

/// One Fig. 11/12 timing row.
#[derive(Clone, Debug)]
pub struct TimingCell {
    pub dataset: String,
    pub setup: String,
    pub model_class: String,
    pub path: String,
    pub train_seconds: f64,
    /// Completion time without euclidean replacement.
    pub completion_seconds: f64,
    /// Completion time with euclidean replacement forced on.
    pub completion_nn_seconds: f64,
    pub synthesized_tuples: usize,
}
impl_to_json!(TimingCell {
    dataset,
    setup,
    model_class,
    path,
    train_seconds,
    completion_seconds,
    completion_nn_seconds,
    synthesized_tuples
});

/// Runs the Fig. 11/12 timing measurements: per setup, train AR and SSAR
/// models and time the completion of one path with and without nearest-
/// neighbor replacement.
pub fn run_timings(setups: &[Setup], scale: f64, seed: u64) -> Vec<TimingCell> {
    let mut jobs = Vec::new();
    for (i, setup) in setups.iter().enumerate() {
        for ssar in [false, true] {
            jobs.push((setup.clone(), ssar, seed.wrapping_add(i as u64 * 17)));
        }
    }
    parallel_map(jobs, |(setup, ssar, s)| {
        let dataset = if setup.id.starts_with('H') {
            "Housing"
        } else {
            "Movies"
        };
        let sc = build_scenario(setup, 0.4, 0.4, scale, *s);
        let train = if *ssar {
            eval_train_config().ssar()
        } else {
            eval_train_config()
        };
        let mut cell = TimingCell {
            dataset: dataset.to_string(),
            setup: setup.id.to_string(),
            model_class: if *ssar { "SSAR" } else { "AR" }.to_string(),
            path: String::new(),
            train_seconds: f64::NAN,
            completion_seconds: f64::NAN,
            completion_nn_seconds: f64::NAN,
            synthesized_tuples: 0,
        };
        let Some(model) = first_path_model(&sc, &train, 5, *s) else {
            return cell;
        };
        cell.path = model.path().describe();
        cell.train_seconds = model.train_seconds;
        let ann =
            SchemaAnnotation::with_incomplete(sc.incomplete_tables.iter().map(String::as_str));
        for (mode, slot) in [
            (ReplacementMode::Never, 0usize),
            (ReplacementMode::Always, 1usize),
        ] {
            let cfg = CompleterConfig {
                replacement: mode,
                ..eval_completer_config()
            };
            let completer = Completer::new(&sc.incomplete, &ann).with_config(cfg);
            let started = Instant::now();
            if let Ok(out) = completer.complete(&model, *s ^ 0x71e5) {
                let elapsed = started.elapsed().as_secs_f64();
                if slot == 0 {
                    cell.completion_seconds = elapsed;
                    cell.synthesized_tuples = out.n_synthesized();
                } else {
                    cell.completion_nn_seconds = elapsed;
                }
            }
        }
        cell
    })
}
