//! ASCII tables and JSON persistence for experiment results.

use std::fs;
use std::path::PathBuf;

use restore_util::json::ToJson;

/// Prints an ASCII table with a title row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!(" {c:<w$} |"));
        }
        s
    };
    let sep: String = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    println!("{sep}");
    println!(
        "{}",
        line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!("{sep}");
    for row in rows {
        println!("{}", line(row));
    }
    println!("{sep}");
}

/// Formats a ratio as a percentage (`0.42` → `"42.0%"`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats seconds with millisecond precision.
pub fn secs(x: f64) -> String {
    format!("{x:.3}s")
}

/// Directory where experiment artifacts are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("RESTORE_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Serializes an experiment result to `results/<name>.json`.
pub fn save_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = fs::write(&path, value.to_json()) {
        eprintln!("warning: cannot write {path:?}: {e}");
    } else {
        println!("[saved {path:?}]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.425), "42.5%");
        assert_eq!(pct(-0.5), "-50.0%");
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
