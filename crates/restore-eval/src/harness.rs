//! Shared experiment plumbing: scenario construction, model training with
//! evaluation-sized defaults, and statistic extraction.

use restore_core::{
    Completer, CompleterConfig, CompletionModel, CompletionOutput, CompletionPath,
    SchemaAnnotation, TrainConfig,
};
use restore_data::{
    apply_removal, generate_synthetic, BiasSpec, RemovalConfig, Scenario, SyntheticConfig,
};
use restore_db::Table;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads each *training run* may use (the data-parallel gradient
/// engine). Defaults to 1 because the harness already fans experiment
/// cells out over the worker pool — same nested-ncpu² reasoning as
/// [`eval_completer_config`] — and training results are worker-count
/// invariant anyway. `--train-workers=N` raises it for single-model runs
/// (timing sweeps, `exp4_timing`).
static TRAIN_WORKERS: AtomicUsize = AtomicUsize::new(1);

/// Sets the per-training-run worker count used by [`eval_train_config`]
/// (`0` = one per hardware thread).
pub fn set_train_workers(workers: usize) {
    TRAIN_WORKERS.store(workers, Ordering::Relaxed);
}

/// The current per-training-run worker count.
pub fn train_workers() -> usize {
    TRAIN_WORKERS.load(Ordering::Relaxed)
}

/// Training configuration sized for the evaluation sweeps (hundreds of
/// models on a laptop).
pub fn eval_train_config() -> TrainConfig {
    TrainConfig {
        epochs: 15,
        batch_size: 256,
        hidden: vec![48, 48],
        embed_dim: 8,
        max_train_rows: 8_000,
        workers: train_workers(),
        ..TrainConfig::default()
    }
}

/// SSAR variant of [`eval_train_config`].
pub fn eval_train_config_ssar() -> TrainConfig {
    eval_train_config().ssar()
}

/// Builds the Exp. 1 synthetic scenario: two tables, biased removal on the
/// most frequent `b` value.
pub fn synthetic_scenario(
    predictability: f64,
    zipf: Option<f64>,
    coherence: Option<f64>,
    n_parent: usize,
    keep: f64,
    corr: f64,
    seed: u64,
) -> Scenario {
    let db = generate_synthetic(
        &SyntheticConfig {
            n_parent,
            predictability,
            zipf_a: zipf,
            group_coherence: coherence,
            ..SyntheticConfig::default()
        },
        seed,
    );
    let mut cfg = RemovalConfig::new(BiasSpec::categorical("tb", "b"), keep, corr);
    cfg.tf_keep_rate = 0.3;
    cfg.seed = seed ^ 0xeee1;
    apply_removal(&db, &cfg)
}

/// Trains the `ta → tb` completion model on a synthetic scenario.
pub fn train_synthetic_model(
    sc: &Scenario,
    train: &TrainConfig,
    seed: u64,
) -> restore_core::CoreResult<CompletionModel> {
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let path = CompletionPath::from_tables(&sc.incomplete, &["ta".into(), "tb".into()])?;
    CompletionModel::train(&sc.incomplete, &ann, path, train, seed)
}

/// Completer configuration for experiment cells: the harness already
/// fans cells out over the worker pool (`parallel_map`), so the inner
/// sampling stays single-threaded to avoid a nested ncpu² thread blowup.
/// Results are identical either way (worker-count invariance).
pub fn eval_completer_config() -> CompleterConfig {
    CompleterConfig {
        workers: 1,
        ..CompleterConfig::default()
    }
}

/// Runs Algorithm 1 for a synthetic model.
pub fn complete_synthetic(
    sc: &Scenario,
    model: &CompletionModel,
    completer_cfg: CompleterConfig,
    seed: u64,
) -> restore_core::CoreResult<CompletionOutput> {
    let ann = SchemaAnnotation::with_incomplete(["tb"]);
    let completer = Completer::new(&sc.incomplete, &ann).with_config(completer_cfg);
    completer.complete(model, seed ^ 0xc0ffee)
}

/// Fraction of rows where `column == value`, or the mean of `column` when
/// `value` is `None` — the statistic the bias-reduction metric tracks.
pub fn stat_of(table: &Table, column: &str, value: Option<&str>) -> f64 {
    let Ok(idx) = table.resolve(column) else {
        return f64::NAN;
    };
    let n = table.n_rows();
    if n == 0 {
        return f64::NAN;
    }
    match value {
        Some(v) => {
            (0..n)
                .filter(|&r| table.value(r, idx).to_string() == v)
                .count() as f64
                / n as f64
        }
        None => {
            let vals: Vec<f64> = (0..n)
                .filter_map(|r| table.value(r, idx).as_f64())
                .collect();
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        }
    }
}

/// Bias statistic of a scenario's biased attribute on an arbitrary table
/// (complete table, incomplete table, or a completed join using qualified
/// column names).
pub fn scenario_stat(sc: &Scenario, table: &Table, qualified: bool) -> f64 {
    let col = if qualified {
        format!("{}.{}", sc.bias.table, sc.bias.column)
    } else {
        sc.bias.column.clone()
    };
    stat_of(table, &col, sc.bias_value.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_fraction_and_mean() {
        let mut t = Table::new(
            "t",
            vec![
                restore_db::Field::new("c", restore_db::DataType::Str),
                restore_db::Field::new("x", restore_db::DataType::Float),
            ],
        );
        t.push_row(&[restore_db::Value::str("a"), restore_db::Value::Float(1.0)])
            .unwrap();
        t.push_row(&[restore_db::Value::str("b"), restore_db::Value::Float(3.0)])
            .unwrap();
        assert_eq!(stat_of(&t, "c", Some("a")), 0.5);
        assert_eq!(stat_of(&t, "x", None), 2.0);
        assert!(stat_of(&t, "missing", None).is_nan());
    }

    #[test]
    fn synthetic_pipeline_runs_end_to_end() {
        let sc = synthetic_scenario(0.9, None, None, 120, 0.5, 0.5, 3);
        let mut cfg = eval_train_config();
        cfg.epochs = 4;
        let model = train_synthetic_model(&sc, &cfg, 3).unwrap();
        let out = complete_synthetic(&sc, &model, CompleterConfig::default(), 3).unwrap();
        assert!(out.join.n_rows() > sc.incomplete.table("tb").unwrap().n_rows());
    }
}
