//! The evaluation metrics of §2.1 and §7.

use std::collections::BTreeMap;

/// Relative error `|estimate − truth| / |truth|`; when the truth is zero
/// the absolute error is returned (the paper's plots never divide by zero
/// because true aggregates are positive).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth.abs() < 1e-12 {
        (estimate - truth).abs()
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Average relative error over the groups of a group-by result (following
/// DeepDB [17], as the paper does): averaged over the *true* groups; a
/// group missing from the estimate counts as 100% error.
pub fn group_relative_error(
    truth: &BTreeMap<Vec<String>, Vec<f64>>,
    estimate: &BTreeMap<Vec<String>, Vec<f64>>,
    agg_idx: usize,
) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (key, tvals) in truth {
        let t = tvals[agg_idx];
        match estimate.get(key) {
            Some(evals) => total += relative_error(evals[agg_idx], t),
            None => total += 1.0,
        }
    }
    total / truth.len() as f64
}

/// Relative-error improvement (Eq. 1): how much completion reduced the
/// error versus querying the incomplete data directly. Positive = better.
pub fn error_improvement(err_incomplete: f64, err_completed: f64) -> f64 {
    err_incomplete - err_completed
}

/// Bias reduction (Eq. 2) on an aggregate statistic (mean of a continuous
/// attribute, or the fraction of a categorical value):
/// `1 − |stat_completed − stat_true| / |stat_true − stat_incomplete|`.
///
/// 1 = bias fully removed, 0 = no improvement, negative = made it worse.
/// When the incomplete data was already unbiased the result is clamped to
/// `[0, 1]` based on whether completion kept it unbiased.
pub fn bias_reduction(stat_true: f64, stat_incomplete: f64, stat_completed: f64) -> f64 {
    let before = (stat_true - stat_incomplete).abs();
    let after = (stat_true - stat_completed).abs();
    if before < 1e-12 {
        return if after < 1e-9 { 1.0 } else { 0.0 };
    }
    1.0 - after / before
}

/// Cardinality correction (§7.3):
/// `1 − |n_completed − n_complete| / |n_incomplete − n_complete|`.
pub fn cardinality_correction(n_complete: usize, n_incomplete: usize, n_completed: usize) -> f64 {
    bias_reduction(n_complete as f64, n_incomplete as f64, n_completed as f64)
}

/// Mean of a slice (`NaN`-free inputs assumed).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median of a slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(5.0, 0.0), 5.0);
    }

    #[test]
    fn group_error_penalizes_missing_groups() {
        let mut truth = BTreeMap::new();
        truth.insert(vec!["a".to_string()], vec![100.0]);
        truth.insert(vec!["b".to_string()], vec![50.0]);
        let mut est = BTreeMap::new();
        est.insert(vec!["a".to_string()], vec![110.0]);
        // group b missing entirely -> error 1.0
        let e = group_relative_error(&truth, &est, 0);
        assert!((e - (0.1 + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn bias_reduction_full_and_none() {
        // Truth 10, incomplete 6, completed 10 -> fully debiased.
        assert_eq!(bias_reduction(10.0, 6.0, 10.0), 1.0);
        // Completed stayed at the incomplete value -> 0.
        assert_eq!(bias_reduction(10.0, 6.0, 6.0), 0.0);
        // Completed overshot to 2 -> negative.
        assert!(bias_reduction(10.0, 6.0, 2.0) < 0.0);
        // Already unbiased and kept -> 1.
        assert_eq!(bias_reduction(10.0, 10.0, 10.0), 1.0);
    }

    #[test]
    fn cardinality_correction_matches_paper_definition() {
        // complete 1000, incomplete 500, completed 950 -> 0.9
        assert!((cardinality_correction(1000, 500, 950) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
