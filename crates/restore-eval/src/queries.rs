//! The query workload of Table 1: ten queries per dataset with joins,
//! filter predicates, aggregations and groupings, each tied to a
//! completion setup (Q1/Q6 → H1/M1, Q2/Q7 → H2/M2, …).

use restore_db::{Agg, Expr, Query};

/// A Table 1 workload entry.
#[derive(Clone, Debug)]
pub struct WorkloadQuery {
    /// `Q1` … `Q10`.
    pub id: &'static str,
    /// The setup it is evaluated under (`H1`…`H5` / `M1`…`M5`).
    pub setup: &'static str,
    /// Human-readable SQL (documentation only; `query` is the executable).
    pub sql: &'static str,
    pub query: Query,
}

/// The ten housing queries of Table 1.
pub fn housing_queries() -> Vec<WorkloadQuery> {
    let entire = || Expr::col("room_type").eq(Expr::lit("Entire home/apt"));
    vec![
        WorkloadQuery {
            id: "Q1",
            setup: "H1",
            sql: "SELECT SUM(price) FROM apartment WHERE room_type='Entire home/apt'",
            query: Query::new(["apartment"]).filter(entire()).aggregate(Agg::Sum("price".into())),
        },
        WorkloadQuery {
            id: "Q2",
            setup: "H2",
            sql: "SELECT COUNT(*) FROM apartment WHERE room_type='Entire home/apt' AND property_type='House' GROUP BY property_type",
            query: Query::new(["apartment"])
                .filter(entire().and(Expr::col("property_type").eq(Expr::lit("House"))))
                .group_by(["property_type"])
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q3",
            setup: "H3",
            sql: "SELECT COUNT(*) FROM apartment WHERE property_type='House'",
            query: Query::new(["apartment"])
                .filter(Expr::col("property_type").eq(Expr::lit("House")))
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q4",
            setup: "H4",
            sql: "SELECT COUNT(*) FROM landlord WHERE landlord_since >= 2011",
            query: Query::new(["landlord"])
                .filter(Expr::col("landlord_since").ge(Expr::lit(2011i64)))
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q5",
            setup: "H5",
            sql: "SELECT AVG(landlord_response_rate) FROM landlord WHERE landlord_response_time >= 2",
            query: Query::new(["landlord"])
                .filter(Expr::col("landlord_response_time").ge(Expr::lit(2i64)))
                .aggregate(Agg::Avg("landlord_response_rate".into())),
        },
        WorkloadQuery {
            id: "Q6",
            setup: "H1",
            sql: "SELECT AVG(price) FROM landlord NATURAL JOIN apartment WHERE room_type='Entire home/apt' GROUP BY landlord_since",
            query: Query::new(["landlord", "apartment"])
                .filter(entire())
                .group_by(["landlord_since"])
                .aggregate(Agg::Avg("price".into())),
        },
        WorkloadQuery {
            id: "Q7",
            setup: "H2",
            sql: "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment WHERE accommodates >= 3 GROUP BY landlord_since",
            query: Query::new(["landlord", "apartment"])
                .filter(Expr::col("accommodates").ge(Expr::lit(3i64)))
                .group_by(["landlord_since"])
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q8",
            setup: "H3",
            sql: "SELECT COUNT(*) FROM landlord NATURAL JOIN apartment WHERE landlord_since >= 2013 GROUP BY landlord_since",
            query: Query::new(["landlord", "apartment"])
                .filter(Expr::col("landlord_since").ge(Expr::lit(2013i64)))
                .group_by(["landlord_since"])
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q9",
            setup: "H4",
            sql: "SELECT SUM(landlord_since) FROM landlord NATURAL JOIN apartment WHERE room_type='Entire home/apt' AND landlord_response_time >= 2",
            query: Query::new(["landlord", "apartment"])
                .filter(entire().and(Expr::col("landlord_response_time").ge(Expr::lit(2i64))))
                .aggregate(Agg::Sum("landlord_since".into())),
        },
        WorkloadQuery {
            id: "Q10",
            setup: "H5",
            sql: "SELECT AVG(landlord_response_rate) FROM landlord NATURAL JOIN apartment WHERE room_type='Entire home/apt' AND landlord_response_time >= 2",
            query: Query::new(["landlord", "apartment"])
                .filter(entire().and(Expr::col("landlord_response_time").ge(Expr::lit(2i64))))
                .aggregate(Agg::Avg("landlord_response_rate".into())),
        },
    ]
}

/// The ten movie queries of Table 1.
pub fn movie_queries() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            id: "Q1",
            setup: "M1",
            sql: "SELECT COUNT(*) FROM movie GROUP BY production_year",
            query: Query::new(["movie"]).group_by(["production_year"]).aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q2",
            setup: "M2",
            sql: "SELECT COUNT(*) FROM movie WHERE genre='Drama' GROUP BY production_year",
            query: Query::new(["movie"])
                .filter(Expr::col("genre").eq(Expr::lit("Drama")))
                .group_by(["production_year"])
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q3",
            setup: "M3",
            sql: "SELECT COUNT(*) FROM movie WHERE genre='Drama' GROUP BY country",
            query: Query::new(["movie"])
                .filter(Expr::col("genre").eq(Expr::lit("Drama")))
                .group_by(["country"])
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q4",
            setup: "M4",
            sql: "SELECT AVG(birth_year) FROM director WHERE gender='m'",
            query: Query::new(["director"])
                .filter(Expr::col("gender").eq(Expr::lit("m")))
                .aggregate(Agg::Avg("birth_year".into())),
        },
        WorkloadQuery {
            id: "Q5",
            setup: "M5",
            sql: "SELECT COUNT(*) FROM company WHERE country_code='[us]'",
            query: Query::new(["company"])
                .filter(Expr::col("country_code").eq(Expr::lit("[us]")))
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q6",
            setup: "M1",
            sql: "SELECT SUM(production_year) FROM movie NATURAL JOIN movie_director NATURAL JOIN director WHERE birth_country='USA' GROUP BY production_year",
            query: Query::new(["movie", "movie_director", "director"])
                .filter(Expr::col("birth_country").eq(Expr::lit("USA")))
                .group_by(["production_year"])
                .aggregate(Agg::Sum("production_year".into())),
        },
        WorkloadQuery {
            id: "Q7",
            setup: "M2",
            sql: "SELECT COUNT(*) FROM movie NATURAL JOIN movie_company NATURAL JOIN company GROUP BY country_code",
            query: Query::new(["movie", "movie_company", "company"])
                .group_by(["country_code"])
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q8",
            setup: "M3",
            sql: "SELECT COUNT(*) FROM movie NATURAL JOIN company NATURAL JOIN movie_companies WHERE country_code='[us]' GROUP BY production_year",
            query: Query::new(["movie", "movie_company", "company"])
                .filter(Expr::col("country_code").eq(Expr::lit("[us]")))
                .group_by(["production_year"])
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q9",
            setup: "M4",
            sql: "SELECT COUNT(*) FROM movie NATURAL JOIN movie_director NATURAL JOIN director WHERE gender='m'",
            query: Query::new(["movie", "movie_director", "director"])
                .filter(Expr::col("gender").eq(Expr::lit("m")))
                .aggregate(Agg::CountStar),
        },
        WorkloadQuery {
            id: "Q10",
            setup: "M5",
            sql: "SELECT COUNT(*) FROM movie NATURAL JOIN company NATURAL JOIN movie_companies WHERE country_code='[us]' GROUP BY country",
            query: Query::new(["movie", "movie_company", "company"])
                .filter(Expr::col("country_code").eq(Expr::lit("[us]")))
                .group_by(["country"])
                .aggregate(Agg::CountStar),
        },
    ]
}

/// Queries evaluated under a given setup id.
pub fn queries_for_setup(setup: &str) -> Vec<WorkloadQuery> {
    let all = if setup.starts_with('H') {
        housing_queries()
    } else {
        movie_queries()
    };
    all.into_iter().filter(|q| q.setup == setup).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_queries_per_dataset() {
        assert_eq!(housing_queries().len(), 10);
        assert_eq!(movie_queries().len(), 10);
    }

    #[test]
    fn each_setup_gets_two_queries() {
        for s in ["H1", "H2", "H3", "H4", "H5", "M1", "M2", "M3", "M4", "M5"] {
            assert_eq!(queries_for_setup(s).len(), 2, "setup {s}");
        }
    }

    #[test]
    fn housing_queries_execute_on_complete_data() {
        let db = restore_data::housing::generate_housing(
            &restore_data::housing::HousingConfig::scaled(0.2),
            1,
        );
        for wq in housing_queries() {
            let res = restore_db::execute(&db, &wq.query);
            assert!(res.is_ok(), "{} failed: {:?}", wq.id, res.err());
        }
    }

    #[test]
    fn movie_queries_execute_on_complete_data() {
        let db = restore_data::movies::generate_movies(
            &restore_data::movies::MoviesConfig::scaled(0.2),
            1,
        );
        for wq in movie_queries() {
            let res = restore_db::execute(&db, &wq.query);
            assert!(res.is_ok(), "{} failed: {:?}", wq.id, res.err());
        }
    }
}
