//! DeepSets tree embeddings (Zaheer et al., NeurIPS 2017) — the
//! permutation-invariant set encoder SSAR models use to incorporate fan-out
//! evidence (§3.3 of the ReStore paper).
//!
//! Each fan-out table gets its own tuple encoder (weight sharing across
//! tuples of the same table); tuple encodings are sum-pooled per evidence
//! row and the concatenated per-table pools pass through a joint MLP that
//! produces the conditioning context for the MADE network.

use std::sync::Arc;

use rand::Rng;

use crate::infer::{Forward, InferenceSession};
use crate::layers::{Embedding, Mlp};
use crate::params::ParamStore;
use crate::tensor::Matrix;

/// Configuration of the encoder for one fan-out table.
#[derive(Clone, Debug)]
pub struct SetTableSpec {
    /// Cardinality of each encoded attribute of the table.
    pub attr_cards: Vec<usize>,
    /// Embedding width used for every attribute of this table.
    pub embed_dim: usize,
    /// Width of the per-tuple encoding (pre-pooling).
    pub tuple_dim: usize,
}

impl SetTableSpec {
    pub fn new(attr_cards: Vec<usize>, embed_dim: usize, tuple_dim: usize) -> Self {
        Self {
            attr_cards,
            embed_dim,
            tuple_dim,
        }
    }
}

/// Configuration of the whole tree encoder.
#[derive(Clone, Debug)]
pub struct DeepSetsConfig {
    pub tables: Vec<SetTableSpec>,
    /// Output context width fed into MADE.
    pub ctx_dim: usize,
    /// Hidden width of the post-pooling MLP.
    pub post_hidden: usize,
}

struct TableEncoder {
    embeddings: Vec<Embedding>,
    pre: Mlp,
}

/// The DeepSets encoder.
pub struct DeepSets {
    encoders: Vec<TableEncoder>,
    post: Mlp,
    ctx_dim: usize,
}

/// The fan-out tuples of one table for a batch of evidence rows.
#[derive(Clone, Debug, Default)]
pub struct TableSet {
    /// `tokens[a][t]` — token of attribute `a` for set-tuple `t`.
    pub tokens: Vec<Arc<Vec<u32>>>,
    /// `segments[t]` — index of the evidence row that set-tuple `t` belongs
    /// to. Rows without set-tuples simply never appear (their pooled
    /// encoding is the zero vector).
    pub segments: Arc<Vec<u32>>,
}

/// Fan-out evidence for a batch: one [`TableSet`] per configured table.
#[derive(Clone, Debug, Default)]
pub struct SetBatch {
    pub tables: Vec<TableSet>,
}

impl DeepSets {
    pub fn new<R: Rng>(cfg: &DeepSetsConfig, store: &mut ParamStore, rng: &mut R) -> Self {
        assert!(!cfg.tables.is_empty(), "DeepSets needs at least one table");
        let encoders = cfg
            .tables
            .iter()
            .map(|spec| {
                let embeddings = spec
                    .attr_cards
                    .iter()
                    .map(|&c| Embedding::new(store, c, spec.embed_dim, rng))
                    .collect::<Vec<_>>();
                let in_dim = spec.embed_dim * spec.attr_cards.len();
                let pre = Mlp::new(store, &[in_dim, spec.tuple_dim, spec.tuple_dim], rng);
                TableEncoder { embeddings, pre }
            })
            .collect::<Vec<_>>();
        let pooled_dim: usize = cfg.tables.iter().map(|t| t.tuple_dim).sum();
        let post = Mlp::new(store, &[pooled_dim, cfg.post_hidden, cfg.ctx_dim], rng);
        Self {
            encoders,
            post,
            ctx_dim: cfg.ctx_dim,
        }
    }

    pub fn ctx_dim(&self) -> usize {
        self.ctx_dim
    }

    /// Encodes the fan-out evidence of `n_rows` evidence tuples into an
    /// `n_rows × ctx_dim` context through any [`Forward`] executor — on the
    /// tape during SSAR training (so gradients flow back into the
    /// encoders), on the no-grad engine during completion.
    pub fn forward<F: Forward>(
        &self,
        f: &mut F,
        store: &ParamStore,
        batch: &SetBatch,
        n_rows: usize,
    ) -> F::Id {
        assert_eq!(
            batch.tables.len(),
            self.encoders.len(),
            "table count mismatch"
        );
        let mut pooled = Vec::with_capacity(self.encoders.len());
        for (enc, set) in self.encoders.iter().zip(&batch.tables) {
            assert_eq!(
                set.tokens.len(),
                enc.embeddings.len(),
                "attr count mismatch"
            );
            let n_tuples = set.segments.len();
            for t in &set.tokens {
                assert_eq!(t.len(), n_tuples, "ragged set tokens");
            }
            let parts: Vec<F::Id> = enc
                .embeddings
                .iter()
                .zip(&set.tokens)
                .map(|(emb, toks)| emb.forward(f, store, toks))
                .collect();
            let x = f.concat_cols(&parts);
            let enc_tuples = enc.pre.forward(f, store, x);
            let act = f.relu(enc_tuples);
            let sum = f.segment_sum(act, &set.segments, n_rows);
            pooled.push(sum);
        }
        let joint = if pooled.len() == 1 {
            pooled[0]
        } else {
            f.concat_cols(&pooled)
        };
        self.post.forward(f, store, joint)
    }

    /// Gradient-free batched encoding into the session's pooled buffers,
    /// returning a borrow of the `n_rows × ctx_dim` context matrix.
    pub fn encode_in<'s>(
        &self,
        session: &'s mut InferenceSession,
        store: &'s ParamStore,
        batch: &SetBatch,
        n_rows: usize,
    ) -> &'s Matrix {
        let mut f = session.ctx(store);
        let out = self.forward(&mut f, store, batch, n_rows);
        session.value(store, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tape::Tape;
    use crate::tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn one_table_encoder(seed: u64) -> (DeepSets, ParamStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let cfg = DeepSetsConfig {
            tables: vec![SetTableSpec::new(vec![4], 4, 8)],
            ctx_dim: 6,
            post_hidden: 16,
        };
        let ds = DeepSets::new(&cfg, &mut store, &mut rng);
        (ds, store)
    }

    fn encode(
        ds: &DeepSets,
        store: &ParamStore,
        tokens: Vec<u32>,
        segments: Vec<u32>,
        rows: usize,
    ) -> Matrix {
        let mut tape = Tape::new();
        let batch = SetBatch {
            tables: vec![TableSet {
                tokens: vec![Arc::new(tokens)],
                segments: Arc::new(segments),
            }],
        };
        let out = ds.forward(&mut tape, store, &batch, rows);
        tape.value(out).clone()
    }

    #[test]
    fn permutation_invariance() {
        let (ds, store) = one_table_encoder(1);
        let a = encode(&ds, &store, vec![0, 1, 2], vec![0, 0, 0], 1);
        let b = encode(&ds, &store, vec![2, 0, 1], vec![0, 0, 0], 1);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(
                (x - y).abs() < 1e-5,
                "set encoding not permutation invariant"
            );
        }
    }

    #[test]
    fn empty_set_rows_get_consistent_encoding() {
        let (ds, store) = one_table_encoder(2);
        // Row 1 has no set tuples; rows with empty sets must share the
        // encoding of a fully empty batch.
        let enc = encode(&ds, &store, vec![0, 1], vec![0, 0], 2);
        let empty = encode(&ds, &store, vec![], vec![], 1);
        for c in 0..enc.cols() {
            assert!((enc.get(1, c) - empty.get(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn different_sets_give_different_encodings() {
        let (ds, store) = one_table_encoder(3);
        let a = encode(&ds, &store, vec![0, 0], vec![0, 0], 1);
        let b = encode(&ds, &store, vec![3, 3], vec![0, 0], 1);
        assert!(a
            .data()
            .iter()
            .zip(b.data())
            .any(|(x, y)| (x - y).abs() > 1e-4));
    }

    #[test]
    fn gradients_flow_into_set_encoder() {
        let (ds, mut store) = one_table_encoder(4);
        let before = store.value(0).clone(); // first embedding table
        let mut adam = Adam::new(&store, 0.05);
        let mut tape = Tape::new();
        let batch = SetBatch {
            tables: vec![TableSet {
                tokens: vec![Arc::new(vec![1, 2, 1])],
                segments: Arc::new(vec![0, 0, 1]),
            }],
        };
        let out = ds.forward(&mut tape, &store, &batch, 2);
        let (r, c) = tape.value(out).shape();
        tape.backward(out, Matrix::filled(r, c, 1.0), &mut store);
        adam.step(&mut store);
        let after = store.value(0);
        assert!(
            before.data().iter().zip(after.data()).any(|(a, b)| a != b),
            "embedding table did not move"
        );
    }
}
