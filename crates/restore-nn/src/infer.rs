//! The gradient-free inference engine.
//!
//! Training records every op on a [`Tape`](crate::tape::Tape) so gradients
//! can flow backwards; inference — the autoregressive sampling loop that
//! dominates ReStore's runtime — needs none of that. This module provides:
//!
//! * [`Forward`] — the op vocabulary shared by both execution paths. Layer
//!   definitions ([`crate::layers`], [`crate::made::Made`],
//!   [`crate::deepsets::DeepSets`]) are written once against this trait;
//!   the tape implements it by recording nodes, the inference engine by
//!   evaluating into reusable buffers.
//! * [`InferenceSession`] — a pool of preallocated activation buffers. A
//!   forward pass borrows it as an [`InferCtx`], evaluates with **no node
//!   recording, no parameter copies, and no `Arc` cloning** (parameter
//!   references resolve straight into the [`ParamStore`]), and leaves the
//!   buffers behind for the next pass. After warm-up, repeated forwards of
//!   the same shape are allocation-free.
//!
//! Both paths produce **bit-identical** values: the inference kernels reuse
//! the exact same loop orders and skip conditions as the tape ops (see
//! `Matrix::masked_matmul_into`), which the equivalence tests pin down.

use std::sync::Arc;

use crate::params::{ParamId, ParamStore};
use crate::tensor::Matrix;

/// The forward-pass op vocabulary. Implemented by the recording
/// [`Tape`](crate::tape::Tape) (training) and by [`InferCtx`] (no-grad
/// inference), so one set of layer definitions drives both paths.
pub trait Forward {
    /// Handle to a value produced during this forward pass.
    type Id: Copy;

    /// Introduces a non-trainable input by copying it in.
    fn input(&mut self, value: &Matrix) -> Self::Id;
    /// References a trainable parameter of `store`.
    fn param(&mut self, store: &ParamStore, id: ParamId) -> Self::Id;
    /// `x · w`.
    fn matmul(&mut self, x: Self::Id, w: Self::Id) -> Self::Id;
    /// `x · (w ⊙ mask)` — MADE masked linear.
    fn masked_matmul(&mut self, x: Self::Id, w: Self::Id, mask: &Arc<Matrix>) -> Self::Id;
    /// Broadcast-add a `1 × n` bias row to every row of `x`.
    fn add_row(&mut self, x: Self::Id, bias: Self::Id) -> Self::Id;
    /// Element-wise addition of equally shaped values.
    fn add(&mut self, a: Self::Id, b: Self::Id) -> Self::Id;
    /// Element-wise `max(0, x)`.
    fn relu(&mut self, x: Self::Id) -> Self::Id;
    /// Scalar multiplication.
    fn scale(&mut self, x: Self::Id, s: f32) -> Self::Id;
    /// Fused `relu(a + b)` — the residual-block hot path. The default
    /// records/evaluates the two ops separately (what the tape needs for
    /// backward); executors may fuse, the value is identical either way.
    fn add_relu(&mut self, a: Self::Id, b: Self::Id) -> Self::Id {
        let s = self.add(a, b);
        self.relu(s)
    }
    /// Column-wise concatenation.
    fn concat_cols(&mut self, parts: &[Self::Id]) -> Self::Id;
    /// Embedding gather: `out[i] = table[idx[i]]`.
    fn gather(&mut self, table: Self::Id, idx: &Arc<Vec<u32>>) -> Self::Id;
    /// Segment sum: `out[seg[i]] += x[i]` over `n_segments` output rows.
    fn segment_sum(&mut self, x: Self::Id, seg: &Arc<Vec<u32>>, n_segments: usize) -> Self::Id;
    /// The computed value behind `id`.
    fn value(&self, id: Self::Id) -> &Matrix;

    /// Shape of the value behind `id`.
    fn shape(&self, id: Self::Id) -> (usize, usize) {
        self.value(id).shape()
    }
}

/// Handle to a value inside an [`InferCtx`]: either a parameter (resolved
/// in the store, zero-copy) or an activation buffer of the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InferRef {
    Param(ParamId),
    Buf(usize),
}

/// A reusable pool of activation buffers for gradient-free forward passes.
///
/// Create one per worker thread, then run any number of forward passes
/// through it; buffers are recycled between passes (and grown on first
/// use), so steady-state inference performs no heap allocation.
#[derive(Default)]
pub struct InferenceSession {
    bufs: Vec<Matrix>,
    /// Materialized `w ⊙ mask` per masked-linear weight (plus the mask's
    /// pointer, to catch a weight being reused under a different mask),
    /// computed once per session. The tape recomputes the hadamard on
    /// every forward; at inference the parameters are frozen, so caching
    /// it turns every masked matmul into a plain matmul. Bit-equality
    /// holds because the tape also materializes `w ⊙ mask` before
    /// multiplying.
    masked: std::collections::HashMap<crate::params::ParamId, (usize, Matrix)>,
    /// State of the band-incremental AR sweep: frozen degree-sorted
    /// masked-weight caches plus per-layer activation buffers, persistent
    /// across batches like the pooled buffers above (see
    /// [`crate::sweep::ArSweep`]).
    sweep: crate::sweep::ArSweep,
    /// Per-row conditional-distribution scratch (see
    /// [`InferenceSession::take_dists`]).
    dists: Vec<Vec<f32>>,
}

impl InferenceSession {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled buffers (diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.bufs.len()
    }

    /// The session's band-incremental sweep state plus the shared
    /// masked-weight cache, borrowed disjointly — the sweep's output-block
    /// evaluation reuses the same `w ⊙ mask` products as the full forward
    /// path instead of materializing its own copies.
    #[allow(clippy::type_complexity)]
    pub(crate) fn sweep_parts(
        &mut self,
    ) -> (
        &mut crate::sweep::ArSweep,
        &mut std::collections::HashMap<ParamId, (usize, Matrix)>,
    ) {
        (&mut self.sweep, &mut self.masked)
    }

    /// Number of layers with a degree-banded sweep cache (diagnostics).
    pub fn sweep_layers_cached(&self) -> usize {
        self.sweep.banded_layers()
    }

    /// Takes the session's per-row conditional-distribution scratch — the
    /// buffer [`Made::conditional_dists_in`](crate::made::Made::conditional_dists_in)
    /// fills. Taken by value (and returned via
    /// [`InferenceSession::store_dists`]) because the fill call borrows
    /// the session too; callers that consume the distributions in place
    /// hand the allocations back so repeated calls on a warm session
    /// allocate nothing.
    pub fn take_dists(&mut self) -> Vec<Vec<f32>> {
        std::mem::take(&mut self.dists)
    }

    /// Returns a scratch taken with [`InferenceSession::take_dists`].
    pub fn store_dists(&mut self, dists: Vec<Vec<f32>>) {
        self.dists = dists;
    }

    /// Starts a forward pass against `store`, rewinding the buffer cursor.
    ///
    /// Sessions assume **frozen parameters**: masked weights are cached on
    /// first use, so create a fresh session after any optimizer step.
    pub fn ctx<'a>(&'a mut self, store: &'a ParamStore) -> InferCtx<'a> {
        InferCtx {
            store,
            bufs: &mut self.bufs,
            masked: &mut self.masked,
            used: 0,
        }
    }

    /// Resolves a handle produced by a context of this session.
    pub fn value<'a>(&'a self, store: &'a ParamStore, id: InferRef) -> &'a Matrix {
        match id {
            InferRef::Param(p) => store.value(p),
            InferRef::Buf(i) => &self.bufs[i],
        }
    }
}

/// Ensures a session masked-weight cache holds `w ⊙ mask` for `pid`,
/// materializing it on first use, and returns it. One weight must always
/// pair with the same mask within a session (true for every layer type).
/// Shared by [`InferCtx`] and the sweep's output-block evaluation, so both
/// engines read the same cached product.
pub(crate) fn masked_weight<'m>(
    masked: &'m mut std::collections::HashMap<ParamId, (usize, Matrix)>,
    store: &ParamStore,
    pid: ParamId,
    mask: &Arc<Matrix>,
) -> &'m Matrix {
    let entry = masked
        .entry(pid)
        .or_insert_with(|| (Arc::as_ptr(mask) as usize, store.value(pid).hadamard(mask)));
    debug_assert_eq!(
        entry.0,
        Arc::as_ptr(mask) as usize,
        "weight {pid} used with two different masks in one session"
    );
    &entry.1
}

/// One in-flight no-grad forward pass over an [`InferenceSession`].
pub struct InferCtx<'a> {
    store: &'a ParamStore,
    bufs: &'a mut Vec<Matrix>,
    masked: &'a mut std::collections::HashMap<ParamId, (usize, Matrix)>,
    used: usize,
}

impl InferCtx<'_> {
    /// Claims the next pooled buffer (allocating a slot on first use) and
    /// hands it out by value so the caller can write while still reading
    /// other values of `self`. Must be returned via [`InferCtx::put_back`].
    fn claim(&mut self) -> (usize, Matrix) {
        if self.used == self.bufs.len() {
            self.bufs.push(Matrix::zeros(0, 0));
        }
        let idx = self.used;
        self.used += 1;
        (idx, std::mem::take(&mut self.bufs[idx]))
    }

    fn put_back(&mut self, idx: usize, m: Matrix) -> InferRef {
        self.bufs[idx] = m;
        InferRef::Buf(idx)
    }

    fn resolve<'m>(store: &'m ParamStore, bufs: &'m [Matrix], id: InferRef) -> &'m Matrix {
        match id {
            InferRef::Param(p) => store.value(p),
            InferRef::Buf(i) => &bufs[i],
        }
    }

    /// Ensures the cached `w ⊙ mask` for parameter `pid` exists,
    /// materializing it on first use. One weight must always pair with the
    /// same mask within a session (true for every layer type).
    fn masked_weight(&mut self, pid: ParamId, mask: &Arc<Matrix>) {
        masked_weight(self.masked, self.store, pid, mask);
    }

    /// Block-restricted masked-linear output: computes only columns `cols`
    /// of `x · (w ⊙ mask) + b` — the batched sampler evaluates just the
    /// logit block of the attribute it is filling. Values are bit-identical
    /// to the corresponding slice of the full layer output.
    pub fn masked_linear_cols(
        &mut self,
        x: InferRef,
        w: ParamId,
        mask: &Arc<Matrix>,
        bias: ParamId,
        cols: std::ops::Range<usize>,
    ) -> InferRef {
        self.masked_weight(w, mask);
        let (idx, mut out) = self.claim();
        {
            let xm = Self::resolve(self.store, self.bufs, x);
            let masked = &self.masked[&w].1;
            xm.matmul_cols_into(masked, cols.clone(), &mut out);
        }
        let b = self.store.value(bias);
        let b_slice = &b.row(0)[cols];
        for r in 0..out.rows() {
            for (v, bv) in out.row_mut(r).iter_mut().zip(b_slice) {
                *v += bv;
            }
        }
        self.put_back(idx, out)
    }
}

impl Forward for InferCtx<'_> {
    type Id = InferRef;

    fn input(&mut self, value: &Matrix) -> InferRef {
        let (idx, mut out) = self.claim();
        out.copy_from(value);
        self.put_back(idx, out)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> InferRef {
        debug_assert!(
            std::ptr::eq(store, self.store),
            "parameters must come from the session's store"
        );
        InferRef::Param(id)
    }

    fn matmul(&mut self, x: InferRef, w: InferRef) -> InferRef {
        let (idx, mut out) = self.claim();
        self.value(x).matmul_into(self.value(w), &mut out);
        self.put_back(idx, out)
    }

    fn masked_matmul(&mut self, x: InferRef, w: InferRef, mask: &Arc<Matrix>) -> InferRef {
        // Weight parameters go through the per-session masked-weight cache
        // (one hadamard per session instead of one per pass), turning the
        // op into a plain tiled matmul; non-param weights fall back to the
        // fused kernel.
        if let InferRef::Param(pid) = w {
            self.masked_weight(pid, mask);
            let (idx, mut out) = self.claim();
            {
                let xm = Self::resolve(self.store, self.bufs, x);
                xm.matmul_into(&self.masked[&pid].1, &mut out);
            }
            return self.put_back(idx, out);
        }
        let (idx, mut out) = self.claim();
        self.value(x)
            .masked_matmul_into(self.value(w), mask, &mut out);
        self.put_back(idx, out)
    }

    fn add_row(&mut self, x: InferRef, bias: InferRef) -> InferRef {
        let (idx, mut out) = self.claim();
        {
            let xm = Self::resolve(self.store, self.bufs, x);
            let b = Self::resolve(self.store, self.bufs, bias);
            assert_eq!(b.shape(), (1, xm.cols()), "bias must be 1 x cols");
            let bias_row = b.row(0);
            out.resize(xm.rows(), xm.cols());
            for r in 0..xm.rows() {
                for ((o, &v), &bv) in out.row_mut(r).iter_mut().zip(xm.row(r)).zip(bias_row) {
                    *o = v + bv;
                }
            }
        }
        self.put_back(idx, out)
    }

    fn add(&mut self, a: InferRef, b: InferRef) -> InferRef {
        let (idx, mut out) = self.claim();
        {
            let am = Self::resolve(self.store, self.bufs, a);
            let bm = Self::resolve(self.store, self.bufs, b);
            assert_eq!(am.shape(), bm.shape(), "add shape mismatch");
            out.resize(am.rows(), am.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(am.data()).zip(bm.data()) {
                *o = x + y;
            }
        }
        self.put_back(idx, out)
    }

    fn relu(&mut self, x: InferRef) -> InferRef {
        let (idx, mut out) = self.claim();
        {
            let xm = Self::resolve(self.store, self.bufs, x);
            out.resize(xm.rows(), xm.cols());
            for (o, &v) in out.data_mut().iter_mut().zip(xm.data()) {
                *o = if v < 0.0 { 0.0 } else { v };
            }
        }
        self.put_back(idx, out)
    }

    fn scale(&mut self, x: InferRef, s: f32) -> InferRef {
        let (idx, mut out) = self.claim();
        {
            let xm = Self::resolve(self.store, self.bufs, x);
            out.resize(xm.rows(), xm.cols());
            for (o, &v) in out.data_mut().iter_mut().zip(xm.data()) {
                *o = v * s;
            }
        }
        self.put_back(idx, out)
    }

    fn add_relu(&mut self, a: InferRef, b: InferRef) -> InferRef {
        let (idx, mut out) = self.claim();
        {
            let am = Self::resolve(self.store, self.bufs, a);
            let bm = Self::resolve(self.store, self.bufs, b);
            assert_eq!(am.shape(), bm.shape(), "add shape mismatch");
            out.resize(am.rows(), am.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(am.data()).zip(bm.data()) {
                let v = x + y;
                *o = if v < 0.0 { 0.0 } else { v };
            }
        }
        self.put_back(idx, out)
    }

    fn concat_cols(&mut self, parts: &[InferRef]) -> InferRef {
        assert!(!parts.is_empty(), "concat of zero parts");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let (idx, mut out) = self.claim();
        out.resize(rows, total);
        let mut offset = 0;
        for &p in parts {
            let m = self.value(p);
            assert_eq!(m.rows(), rows, "concat row mismatch");
            let c = m.cols();
            for r in 0..rows {
                out.row_mut(r)[offset..offset + c].copy_from_slice(m.row(r));
            }
            offset += c;
        }
        self.put_back(idx, out)
    }

    fn gather(&mut self, table: InferRef, idx: &Arc<Vec<u32>>) -> InferRef {
        let (slot, mut out) = self.claim();
        let t = self.value(table);
        out.resize(idx.len(), t.cols());
        for (i, &ix) in idx.iter().enumerate() {
            let ix = ix as usize;
            assert!(ix < t.rows(), "gather index {ix} out of range {}", t.rows());
            out.row_mut(i).copy_from_slice(t.row(ix));
        }
        self.put_back(slot, out)
    }

    fn segment_sum(&mut self, x: InferRef, seg: &Arc<Vec<u32>>, n_segments: usize) -> InferRef {
        let (slot, mut out) = self.claim();
        let m = self.value(x);
        assert_eq!(m.rows(), seg.len(), "segment ids must cover all rows");
        out.resize(n_segments, m.cols());
        out.fill_zero();
        for (i, &s) in seg.iter().enumerate() {
            let s = s as usize;
            assert!(s < n_segments, "segment id {s} out of range {n_segments}");
            let src = m.row(i);
            // Safety note not needed: disjoint matrices (out is local).
            for (o, v) in out.row_mut(s).iter_mut().zip(src) {
                *o += v;
            }
        }
        self.put_back(slot, out)
    }

    fn value(&self, id: InferRef) -> &Matrix {
        match id {
            InferRef::Param(p) => self.store.value(p),
            InferRef::Buf(i) => &self.bufs[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs the same op chain on the tape and the inference engine and
    /// checks bit equality.
    #[test]
    fn ops_match_tape_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut store = ParamStore::new();
        let w = store.register(Matrix::rand_uniform(3, 4, -1.0, 1.0, &mut rng));
        let b = store.register(Matrix::rand_uniform(1, 4, -0.5, 0.5, &mut rng));
        let table = store.register(Matrix::rand_uniform(6, 3, -1.0, 1.0, &mut rng));
        let mask = Arc::new(Matrix::from_rows(&[
            &[1.0, 0.0, 1.0, 1.0],
            &[0.0, 1.0, 1.0, 0.0],
            &[1.0, 1.0, 0.0, 1.0],
        ]));
        let idx = Arc::new(vec![0u32, 3, 5, 1]);
        let seg = Arc::new(vec![1u32, 0, 1, 1]);

        fn chain<F: Forward>(
            f: &mut F,
            store: &ParamStore,
            (w, b, table): (ParamId, ParamId, ParamId),
            mask: &Arc<Matrix>,
            idx: &Arc<Vec<u32>>,
            seg: &Arc<Vec<u32>>,
        ) -> Matrix {
            let t = f.param(store, table);
            let x = f.gather(t, idx);
            let wv = f.param(store, w);
            let bv = f.param(store, b);
            let h = f.masked_matmul(x, wv, mask);
            let h = f.add_row(h, bv);
            let h = f.relu(h);
            let h2 = f.scale(h, 0.5);
            let h = f.add(h, h2);
            let cat = f.concat_cols(&[h, h]);
            let pooled = f.segment_sum(cat, seg, 2);
            f.value(pooled).clone()
        }

        let mut tape = Tape::new();
        let want = chain(&mut tape, &store, (w, b, table), &mask, &idx, &seg);

        let mut session = InferenceSession::new();
        let got = chain(
            &mut session.ctx(&store),
            &store,
            (w, b, table),
            &mask,
            &idx,
            &seg,
        );
        assert_eq!(want, got, "no-grad forward diverged from tape forward");
    }

    #[test]
    fn buffers_are_recycled_across_passes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.register(Matrix::rand_uniform(4, 4, -1.0, 1.0, &mut rng));
        let x = Matrix::rand_uniform(8, 4, -1.0, 1.0, &mut rng);
        let mut session = InferenceSession::new();
        let mut first = None;
        for _ in 0..5 {
            let mut ctx = session.ctx(&store);
            let xi = ctx.input(&x);
            let wi = ctx.param(&store, w);
            let h = ctx.matmul(xi, wi);
            let out = ctx.relu(h);
            let v = ctx.value(out).clone();
            match &first {
                None => first = Some(v),
                Some(f) => assert_eq!(f, &v),
            }
        }
        // input + matmul + relu = 3 buffers, reused every pass.
        assert_eq!(session.pooled_buffers(), 3);
    }
}
