//! Losses and distribution utilities.
//!
//! The MADE output layer produces one softmax *block* per attribute; the
//! training loss is the per-attribute cross entropy, optionally weighted per
//! row so attributes with unknown values (e.g. masked tuple factors) do not
//! contribute.

use crate::tensor::Matrix;

/// Numerically stable softmax of a slice, written into `out`.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    debug_assert_eq!(logits.len(), out.len());
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    if sum > 0.0 {
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

/// Convenience allocating version of [`softmax_into`].
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Layout of the per-attribute logit blocks inside a logits matrix.
#[derive(Clone, Debug)]
pub struct BlockLayout {
    offsets: Vec<usize>,
    cards: Vec<usize>,
    total: usize,
}

impl BlockLayout {
    /// Builds a layout from per-attribute cardinalities.
    pub fn new(cards: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(cards.len());
        let mut total = 0;
        for &c in cards {
            offsets.push(total);
            total += c;
        }
        Self {
            offsets,
            cards: cards.to_vec(),
            total,
        }
    }

    pub fn num_blocks(&self) -> usize {
        self.cards.len()
    }

    pub fn total_width(&self) -> usize {
        self.total
    }

    pub fn block(&self, i: usize) -> (usize, usize) {
        (self.offsets[i], self.cards[i])
    }

    /// Extracts the softmax distribution of block `attr` from one logits row.
    pub fn dist(&self, logits_row: &[f32], attr: usize) -> Vec<f32> {
        let (off, card) = self.block(attr);
        softmax(&logits_row[off..off + card])
    }
}

/// Result of [`block_cross_entropy`].
pub struct BlockLoss {
    /// Mean negative log-likelihood per weighted target.
    pub loss: f32,
    /// Per-attribute mean NLL (unweighted rows excluded), useful as the
    /// model-selection "test loss" of the paper (§5, Fig. 5b).
    pub per_attr: Vec<f32>,
    /// Gradient w.r.t. the logits, ready to seed `Tape::backward`.
    pub dlogits: Matrix,
}

/// Unnormalized result of [`block_cross_entropy_sums`]: weighted *sums*
/// instead of means, so microbatch losses can be combined exactly — the
/// data-parallel training engine normalizes by the whole batch's weight,
/// making the reduced gradient equal to the full-batch gradient no matter
/// how the batch was split.
pub struct BlockLossSums {
    /// Σ w·nll over all targets of this (micro)batch.
    pub loss_sum: f64,
    /// Σ w over all targets of this (micro)batch.
    pub weight_sum: f64,
    /// Per-attribute Σ w·nll.
    pub per_attr: Vec<f32>,
    /// Per-attribute Σ w.
    pub per_attr_weight: Vec<f32>,
    /// **Unnormalized** gradient w.r.t. the logits (softmax − one-hot,
    /// weighted); scale by `1 / total_weight` before seeding backward.
    pub dlogits: Matrix,
}

/// Softmax cross-entropy over attribute blocks, returning unnormalized
/// weighted sums (see [`BlockLossSums`]).
///
/// * `logits` — `m × layout.total_width()`.
/// * `targets[a][r]` — token of attribute `a` in row `r`; any slice-like
///   column type works (`Vec<u32>`, `&[u32]`), so callers can borrow their
///   token columns instead of cloning them.
/// * `weights` — optional per-attribute, per-row loss weights (`0` skips the
///   row for that attribute, e.g. when the value is unknown/masked).
pub fn block_cross_entropy_sums<T: AsRef<[u32]>>(
    logits: &Matrix,
    layout: &BlockLayout,
    targets: &[T],
    weights: Option<&[Vec<f32>]>,
) -> BlockLossSums {
    let m = logits.rows();
    assert_eq!(logits.cols(), layout.total_width(), "logits width mismatch");
    assert_eq!(
        targets.len(),
        layout.num_blocks(),
        "target attr count mismatch"
    );

    let mut dlogits = Matrix::zeros(m, logits.cols());
    let mut loss_sum = 0.0f64;
    let mut weight_sum = 0.0f64;
    let mut per_attr = vec![0.0f32; layout.num_blocks()];
    let mut per_attr_weight = vec![0.0f32; layout.num_blocks()];
    let mut probs = Vec::new();

    for a in 0..layout.num_blocks() {
        let (off, card) = layout.block(a);
        probs.resize(card, 0.0);
        for r in 0..m {
            let w = weights.map_or(1.0, |ws| ws[a][r]);
            if w == 0.0 {
                continue;
            }
            let row = logits.row(r);
            softmax_into(&row[off..off + card], &mut probs);
            let t = targets[a].as_ref()[r] as usize;
            assert!(
                t < card,
                "target token {t} out of range for attr {a} (card {card})"
            );
            let p = probs[t].max(1e-12);
            let nll = -p.ln();
            loss_sum += (w * nll) as f64;
            weight_sum += w as f64;
            per_attr[a] += w * nll;
            per_attr_weight[a] += w;
            let drow = dlogits.row_mut(r);
            for (j, &pj) in probs.iter().enumerate() {
                drow[off + j] += w * pj;
            }
            drow[off + t] -= w;
        }
    }

    BlockLossSums {
        loss_sum,
        weight_sum,
        per_attr,
        per_attr_weight,
        dlogits,
    }
}

/// Softmax cross-entropy over attribute blocks — the mean-normalized
/// convenience form of [`block_cross_entropy_sums`].
pub fn block_cross_entropy<T: AsRef<[u32]>>(
    logits: &Matrix,
    layout: &BlockLayout,
    targets: &[T],
    weights: Option<&[Vec<f32>]>,
) -> BlockLoss {
    let mut sums = block_cross_entropy_sums(logits, layout, targets, weights);
    let norm = if sums.weight_sum > 0.0 {
        1.0 / sums.weight_sum as f32
    } else {
        0.0
    };
    sums.dlogits.scale_assign(norm);
    for (p, w) in sums.per_attr.iter_mut().zip(&sums.per_attr_weight) {
        if *w > 0.0 {
            *p /= w;
        }
    }
    BlockLoss {
        loss: if sums.weight_sum > 0.0 {
            (sums.loss_sum / sums.weight_sum) as f32
        } else {
            0.0
        },
        per_attr: sums.per_attr,
        dlogits: sums.dlogits,
    }
}

/// Kullback–Leibler divergence `D_KL(p ‖ q)` between two discrete
/// distributions. Used by the completion-confidence machinery (§6): the
/// certainty of a prediction is `1 − exp(−D_KL(P_model ‖ P_incomplete))`.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let mut kl = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            kl += pi * (pi / qi.max(1e-9)).ln();
        }
    }
    kl.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let s = softmax(&[1000.0, -1000.0]);
        assert!((s[0] - 1.0).abs() < 1e-6);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layout_blocks_are_contiguous() {
        let layout = BlockLayout::new(&[3, 2, 4]);
        assert_eq!(layout.total_width(), 9);
        assert_eq!(layout.block(0), (0, 3));
        assert_eq!(layout.block(1), (3, 2));
        assert_eq!(layout.block(2), (5, 4));
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_card() {
        let layout = BlockLayout::new(&[4]);
        let logits = Matrix::zeros(2, 4);
        let loss = block_cross_entropy(&logits, &layout, &[vec![0, 3]], None);
        assert!((loss.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_is_softmax_minus_onehot() {
        let layout = BlockLayout::new(&[2]);
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let loss = block_cross_entropy(&logits, &layout, &[vec![1]], None);
        assert!((loss.dlogits.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((loss.dlogits.get(0, 1) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_weight_rows_are_skipped() {
        let layout = BlockLayout::new(&[2]);
        let logits = Matrix::from_rows(&[&[5.0, -5.0], &[0.0, 0.0]]);
        let weights = vec![vec![0.0, 1.0]];
        let loss = block_cross_entropy(&logits, &layout, &[vec![1, 0]], Some(&weights));
        // Only the second (uniform) row counts.
        assert!((loss.loss - (2.0f32).ln()).abs() < 1e-5);
        assert_eq!(loss.dlogits.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn kl_divergence_zero_iff_equal() {
        let p = vec![0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p) < 1e-7);
        let q = vec![0.5, 0.3, 0.2];
        assert!(kl_divergence(&p, &q) > 0.01);
    }

    #[test]
    fn per_attr_loss_separates_blocks() {
        let layout = BlockLayout::new(&[2, 2]);
        // First block confident-correct, second uniform.
        let logits = Matrix::from_rows(&[&[10.0, -10.0, 0.0, 0.0]]);
        let loss = block_cross_entropy(&logits, &layout, &[vec![0], vec![1]], None);
        assert!(loss.per_attr[0] < 1e-3);
        assert!((loss.per_attr[1] - (2.0f32).ln()).abs() < 1e-5);
    }
}
