//! Reusable layers: linear, masked linear, embedding, and MLP.

use std::sync::Arc;

use rand::Rng;

use crate::infer::Forward;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Matrix;

/// Dense affine layer `y = x·W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    pub fn new<R: Rng>(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let w = store.register(Matrix::glorot(in_dim, out_dim, rng));
        let b = store.register(Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    pub fn forward<F: Forward>(&self, f: &mut F, store: &ParamStore, x: F::Id) -> F::Id {
        let w = f.param(store, self.w);
        let b = f.param(store, self.b);
        let h = f.matmul(x, w);
        f.add_row(h, b)
    }
}

/// Affine layer whose weight is element-wise gated by a fixed binary mask —
/// the building block of MADE.
#[derive(Clone, Debug)]
pub struct MaskedLinear {
    w: ParamId,
    b: ParamId,
    mask: Arc<Matrix>,
}

impl MaskedLinear {
    pub fn new<R: Rng>(store: &mut ParamStore, mask: Arc<Matrix>, rng: &mut R) -> Self {
        let (in_dim, out_dim) = mask.shape();
        let w = store.register(Matrix::glorot(in_dim, out_dim, rng));
        let b = store.register(Matrix::zeros(1, out_dim));
        Self { w, b, mask }
    }

    pub fn mask(&self) -> &Arc<Matrix> {
        &self.mask
    }

    /// `(weight, bias)` parameter ids — the inference engine's
    /// block-restricted output evaluation reads these directly.
    pub fn param_ids(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }

    pub fn forward<F: Forward>(&self, f: &mut F, store: &ParamStore, x: F::Id) -> F::Id {
        let w = f.param(store, self.w);
        let b = f.param(store, self.b);
        let h = f.masked_matmul(x, w, &self.mask);
        f.add_row(h, b)
    }
}

/// Token embedding table.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: ParamId,
    cardinality: usize,
    dim: usize,
}

impl Embedding {
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        cardinality: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let table = store.register(Matrix::rand_uniform(
            cardinality.max(1),
            dim,
            -0.1,
            0.1,
            rng,
        ));
        Self {
            table,
            cardinality,
            dim,
        }
    }

    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding table's parameter id — the incremental AR sweep
    /// gathers token rows straight out of the store with it.
    pub fn param_id(&self) -> ParamId {
        self.table
    }

    pub fn forward<F: Forward>(
        &self,
        f: &mut F,
        store: &ParamStore,
        tokens: &Arc<Vec<u32>>,
    ) -> F::Id {
        let table = f.param(store, self.table);
        f.gather(table, tokens)
    }
}

/// Fully connected network with ReLU activations between layers.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]`; ReLU after every layer except the last.
    pub fn new<R: Rng>(store: &mut ParamStore, dims: &[usize], rng: &mut R) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    pub fn in_dim(&self) -> usize {
        self.layers.first().unwrap().in_dim()
    }

    pub fn forward<F: Forward>(&self, f: &mut F, store: &ParamStore, mut x: F::Id) -> F::Id {
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(f, store, x);
            if i + 1 < self.layers.len() {
                x = f.relu(x);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_output_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, 3, 5, &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Matrix::zeros(4, 3));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (4, 5));
    }

    #[test]
    fn embedding_looks_up_rows() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, 10, 4, &mut rng);
        let mut tape = Tape::new();
        let y = emb.forward(&mut tape, &store, &Arc::new(vec![3, 3, 7]));
        let v = tape.value(y);
        assert_eq!(v.shape(), (3, 4));
        assert_eq!(v.row(0), v.row(1));
        assert_ne!(v.row(0), v.row(2));
    }

    #[test]
    fn mlp_learns_linear_regression() {
        // y = 2x - 1, trained with Adam on squared loss via manual seed grad.
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &[1, 8, 1], &mut rng);
        let mut adam = Adam::new(&store, 0.02);
        let xs: Vec<f32> = (0..32).map(|i| i as f32 / 16.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        let x_mat = Matrix::from_vec(32, 1, xs);
        let y_mat = Matrix::from_vec(32, 1, ys);
        let mut last = f32::MAX;
        for _ in 0..400 {
            let mut tape = Tape::new();
            let x = tape.input(x_mat.clone());
            let pred = mlp.forward(&mut tape, &store, x);
            let mut dloss = tape.value(pred).clone();
            dloss.add_scaled(&y_mat, -1.0);
            last = dloss.data().iter().map(|d| d * d).sum::<f32>() / 32.0;
            dloss.scale_assign(2.0 / 32.0);
            tape.backward(pred, dloss, &mut store);
            adam.step(&mut store);
        }
        assert!(last < 1e-2, "MLP failed to fit a line, mse = {last}");
    }

    #[test]
    fn masked_linear_respects_mask() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let mask = Arc::new(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]));
        let ml = MaskedLinear::new(&mut store, Arc::clone(&mask), &mut rng);
        let mut tape = Tape::new();
        // Vary input column 1; output column 0 must not change, and output
        // column 1 (fully masked) must stay at its bias value.
        let x1 = tape.input(Matrix::from_rows(&[&[1.0, 5.0]]));
        let y1 = ml.forward(&mut tape, &store, x1);
        let x2 = tape.input(Matrix::from_rows(&[&[1.0, -5.0]]));
        let y2 = ml.forward(&mut tape, &store, x2);
        assert_eq!(tape.value(y1).get(0, 0), tape.value(y2).get(0, 0));
        assert_eq!(tape.value(y1).get(0, 1), tape.value(y2).get(0, 1));
    }
}
