//! MADE — Masked Autoencoder for Distribution Estimation (Germain et al.),
//! the deep autoregressive model class ReStore's completion models build on
//! (§3.1–§3.2 of the paper), with learned per-attribute embeddings and
//! residual connections as in naru (Yang et al., VLDB 2019).

use std::sync::Arc;

use rand::Rng;

use crate::infer::{Forward, InferenceSession};
use crate::layers::{Embedding, MaskedLinear};
use crate::loss::{block_cross_entropy, softmax_into, BlockLayout, BlockLoss};
use crate::masks::build_masks;
use crate::params::ParamStore;
use crate::sweep::{ArSweep, BandedCache, SweepNet};
use crate::tensor::Matrix;

/// One model attribute: its token cardinality and embedding width.
#[derive(Clone, Debug)]
pub struct AttrSpec {
    pub cardinality: usize,
    pub embed_dim: usize,
}

impl AttrSpec {
    pub fn new(cardinality: usize, embed_dim: usize) -> Self {
        Self {
            cardinality,
            embed_dim,
        }
    }
}

/// Hyper-parameters of a MADE network.
#[derive(Clone, Debug)]
pub struct MadeConfig {
    pub attrs: Vec<AttrSpec>,
    /// Width of the always-visible conditioning block (0 = plain AR model;
    /// >0 = SSAR conditioning from the DeepSets tree encoder).
    pub ctx_dim: usize,
    /// Hidden layer widths. Equal widths enable residual connections.
    pub hidden: Vec<usize>,
    pub residual: bool,
    /// Run autoregressive sampling and block-logit evaluation through the
    /// band-incremental sweep (recompute only the newly needed degree band
    /// of hidden units per attribute) instead of a full trunk forward per
    /// attribute. Values are **bit-identical** either way; `false` keeps
    /// the full-recompute path as the reference/escape hatch.
    pub incremental_sweep: bool,
}

impl MadeConfig {
    pub fn new(attrs: Vec<AttrSpec>) -> Self {
        Self {
            attrs,
            ctx_dim: 0,
            hidden: vec![64, 64],
            residual: true,
            incremental_sweep: true,
        }
    }

    pub fn with_ctx(mut self, ctx_dim: usize) -> Self {
        self.ctx_dim = ctx_dim;
        self
    }

    pub fn with_hidden(mut self, hidden: Vec<usize>) -> Self {
        self.hidden = hidden;
        self
    }

    pub fn with_incremental_sweep(mut self, on: bool) -> Self {
        self.incremental_sweep = on;
        self
    }
}

/// The MADE network. Parameters live in an external [`ParamStore`] so the
/// same store can also hold a DeepSets context encoder (SSAR models).
#[derive(Clone, Debug)]
pub struct Made {
    cfg: MadeConfig,
    embeddings: Vec<Embedding>,
    input_layer: MaskedLinear,
    hidden_layers: Vec<MaskedLinear>,
    output_layer: MaskedLinear,
    layout: BlockLayout,
    /// Shared hidden-unit degrees (from mask construction) — the band
    /// boundaries of the incremental sweep.
    hidden_degrees: Vec<usize>,
    /// Column offset of each attribute's embedding block inside the trunk
    /// input (after the `ctx_dim`-wide context block).
    embed_offsets: Vec<usize>,
    /// Frozen banded trunk caches shared across inference sessions — built
    /// by [`Made::freeze_banded`] once the weights are final (snapshot
    /// rehydration). `None` while the model may still train.
    banded: Option<Arc<BandedCache>>,
}

impl Made {
    pub fn new<R: Rng>(cfg: MadeConfig, store: &mut ParamStore, rng: &mut R) -> Self {
        assert!(!cfg.attrs.is_empty(), "MADE needs at least one attribute");
        assert!(
            cfg.attrs.iter().all(|a| a.cardinality >= 1),
            "zero-cardinality attribute"
        );
        let embed_dims: Vec<usize> = cfg.attrs.iter().map(|a| a.embed_dim).collect();
        let cards: Vec<usize> = cfg.attrs.iter().map(|a| a.cardinality).collect();
        let masks = build_masks(&embed_dims, &cards, cfg.ctx_dim, &cfg.hidden);
        let mut embed_offsets = Vec::with_capacity(embed_dims.len());
        let mut offset = cfg.ctx_dim;
        for &d in &embed_dims {
            embed_offsets.push(offset);
            offset += d;
        }

        let embeddings = cfg
            .attrs
            .iter()
            .map(|a| Embedding::new(store, a.cardinality, a.embed_dim, rng))
            .collect();
        let input_layer = MaskedLinear::new(store, Arc::clone(&masks.input), rng);
        let hidden_layers = masks
            .hidden
            .iter()
            .map(|m| MaskedLinear::new(store, Arc::clone(m), rng))
            .collect();
        let output_layer = MaskedLinear::new(store, Arc::clone(&masks.output), rng);

        Self {
            cfg,
            embeddings,
            input_layer,
            hidden_layers,
            output_layer,
            layout: BlockLayout::new(&cards),
            hidden_degrees: masks.hidden_degrees,
            embed_offsets,
            banded: None,
        }
    }

    /// Builds the lane-padded banded trunk caches once and freezes them
    /// for sharing across all inference sessions (`Arc` adoption in
    /// [`ArSweep::begin`]) — the snapshot loader calls this right after
    /// streaming the persisted weights in, so no session ever pays the
    /// degree-sort-and-pad copy again. Must only be called once the
    /// weights are final: the caches snapshot `w ⊙ mask`.
    pub fn freeze_banded(&mut self, store: &ParamStore) {
        let cache = BandedCache::build(store, &self.sweep_net());
        self.banded = Some(Arc::new(cache));
    }

    /// Whether [`Made::freeze_banded`] has run (diagnostics).
    pub fn has_frozen_banded(&self) -> bool {
        self.banded.is_some()
    }

    /// Whether sampling/block-logit evaluation runs through the
    /// band-incremental sweep (see [`MadeConfig::incremental_sweep`]).
    pub fn incremental_sweep(&self) -> bool {
        self.cfg.incremental_sweep
    }

    /// Toggles the band-incremental sweep at runtime — the escape hatch
    /// back to the full-recompute reference path (values are bit-identical
    /// either way).
    pub fn set_incremental_sweep(&mut self, on: bool) {
        self.cfg.incremental_sweep = on;
    }

    pub fn num_attrs(&self) -> usize {
        self.cfg.attrs.len()
    }

    pub fn layout(&self) -> &BlockLayout {
        &self.layout
    }

    pub fn ctx_dim(&self) -> usize {
        self.cfg.ctx_dim
    }

    pub fn cardinality(&self, attr: usize) -> usize {
        self.cfg.attrs[attr].cardinality
    }

    /// Validates a batch against the model shape — column count, ragged
    /// columns, context presence and shape — and returns the row count.
    /// Shared by the trunk and the sweep so both paths reject the same
    /// bad inputs identically.
    fn check_batch(&self, tokens: &[Arc<Vec<u32>>], ctx_shape: Option<(usize, usize)>) -> usize {
        assert_eq!(
            tokens.len(),
            self.num_attrs(),
            "token column count mismatch"
        );
        let m = tokens.first().map_or(0, |t| t.len());
        for t in tokens {
            assert_eq!(t.len(), m, "ragged token columns");
        }
        match (self.cfg.ctx_dim, ctx_shape) {
            (0, None) => {}
            (d, Some(shape)) => assert_eq!(shape, (m, d), "context shape mismatch"),
            (d, None) => panic!("model expects a {d}-wide context"),
            #[allow(unreachable_patterns)]
            (0, Some(_)) => panic!("model does not take a context"),
        }
        m
    }

    /// The shared trunk (embeddings through the last hidden ReLU) of the
    /// forward pass, generic over the executor.
    fn trunk<F: Forward>(
        &self,
        f: &mut F,
        store: &ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<F::Id>,
    ) -> F::Id {
        self.check_batch(tokens, ctx.map(|c| f.shape(c)));
        let mut parts = Vec::with_capacity(self.num_attrs() + 1);
        if let Some(c) = ctx {
            parts.push(c);
        }
        for (emb, toks) in self.embeddings.iter().zip(tokens) {
            parts.push(emb.forward(f, store, toks));
        }
        let x = f.concat_cols(&parts);
        let mut h = self.input_layer.forward(f, store, x);
        h = f.relu(h);
        for layer in &self.hidden_layers {
            let pre = layer.forward(f, store, h);
            h = if self.cfg.residual && f.shape(pre) == f.shape(h) {
                f.add_relu(pre, h)
            } else {
                f.relu(pre)
            };
        }
        h
    }

    /// Forward pass through any [`Forward`] executor — a recording
    /// [`Tape`](crate::tape::Tape) during training, a no-grad
    /// [`InferCtx`](crate::infer::InferCtx) during inference. `tokens[a]`
    /// holds the token of attribute `a` for every batch row; `ctx` must be
    /// provided iff `ctx_dim > 0`.
    pub fn forward<F: Forward>(
        &self,
        f: &mut F,
        store: &ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<F::Id>,
    ) -> F::Id {
        let h = self.trunk(f, store, tokens, ctx);
        self.output_layer.forward(f, store, h)
    }

    /// Gradient-free forward of the logit block of `attr` only — the
    /// autoregressive sampler never needs the other blocks. Returns the
    /// `rows × cardinality(attr)` block, bit-identical to the
    /// corresponding slice of the full logits. With
    /// [`MadeConfig::incremental_sweep`] on (the default) only the hidden
    /// bands of degree `≤ attr` are evaluated (everything the block can
    /// see); the escape hatch runs the full trunk.
    pub fn logits_attr_in<'s>(
        &self,
        session: &'s mut InferenceSession,
        store: &'s ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
        attr: usize,
    ) -> &'s Matrix {
        if self.cfg.incremental_sweep {
            let net = self.sweep_net();
            let (sweep, masked) = session.sweep_parts();
            self.sweep_begin(&net, sweep, store, tokens, ctx, attr);
            let (off, card) = self.layout.block(attr);
            sweep.output_block(masked, store, &self.output_layer, off..off + card);
            return &sweep.logits;
        }
        self.logits_attr_full_in(session, store, tokens, ctx, attr)
    }

    /// The full-trunk reference form of [`Made::logits_attr_in`]: one
    /// complete trunk forward, then the block-restricted output.
    fn logits_attr_full_in<'s>(
        &self,
        session: &'s mut InferenceSession,
        store: &'s ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
        attr: usize,
    ) -> &'s Matrix {
        let (off, card) = self.layout.block(attr);
        let (w, b) = self.output_layer.param_ids();
        let mask = Arc::clone(self.output_layer.mask());
        let mut f = session.ctx(store);
        let ctx_id = ctx.map(|c| f.input(c));
        let h = self.trunk(&mut f, store, tokens, ctx_id);
        let out = f.masked_linear_cols(h, w, &mask, b, off..off + card);
        session.value(store, out)
    }

    /// The sweep's view of the masked trunk.
    fn sweep_net(&self) -> SweepNet<'_> {
        let mut layers = Vec::with_capacity(1 + self.hidden_layers.len());
        layers.push(&self.input_layer);
        layers.extend(self.hidden_layers.iter());
        SweepNet {
            layers,
            degrees: &self.hidden_degrees,
            n_attrs: self.num_attrs(),
            residual: self.cfg.residual,
            banded: self.banded.as_deref(),
        }
    }

    /// Starts a sweep: validates the batch (same checks as the trunk),
    /// assembles the trunk input (context block + every attribute's
    /// embedding block under the current tokens) and computes all hidden
    /// bands of degree `≤ upto`, after which any logit block `attr ≤ upto`
    /// can be evaluated.
    fn sweep_begin(
        &self,
        net: &SweepNet,
        sweep: &mut ArSweep,
        store: &ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
        upto: usize,
    ) {
        let m = self.check_batch(tokens, ctx.map(|c| c.shape()));
        sweep.begin(store, net, m);
        if let Some(c) = ctx {
            sweep.set_x_block(0, c);
        }
        // Only attributes `< upto` feed the bands computed here or later:
        // band degree `d` reads attribute blocks `< d`, the setup pass
        // covers degrees `≤ upto`, and every later step re-gathers the
        // attribute it just sampled before the first band that reads it.
        // Blocks `≥ upto` are never read (their band weights are zero and
        // the k-limited GEMM skips their rows entirely), so their stale
        // contents are irrelevant.
        for (a, (emb, toks)) in self.embeddings.iter().zip(tokens).enumerate().take(upto) {
            sweep.gather_x_block(self.embed_offsets[a], store.value(emb.param_id()), toks);
        }
        sweep.compute(net, 0..upto + 1);
    }

    /// Inference-only forward returning an owned logits matrix (convenience
    /// wrapper over [`Made::logits_in`] with a throwaway session).
    pub fn logits(
        &self,
        store: &ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
    ) -> Matrix {
        let mut session = InferenceSession::new();
        self.logits_in(&mut session, store, tokens, ctx).clone()
    }

    /// Gradient-free batched forward: evaluates the logits for every batch
    /// row into the session's pooled buffers and returns a borrow of the
    /// result. Repeated calls with equal batch shapes are allocation-free.
    pub fn logits_in<'s>(
        &self,
        session: &'s mut InferenceSession,
        store: &'s ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
    ) -> &'s Matrix {
        let mut f = session.ctx(store);
        let ctx_id = ctx.map(|c| f.input(c));
        let out = self.forward(&mut f, store, tokens, ctx_id);
        session.value(store, out)
    }

    /// Evaluates the per-attribute NLL without updating parameters — the
    /// "test loss" used for basic model selection (§5). Targets are
    /// borrowed straight from the token columns, never cloned.
    pub fn evaluate(
        &self,
        store: &ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
        weights: Option<&[Vec<f32>]>,
    ) -> BlockLoss {
        let logits = self.logits(store, tokens, ctx);
        let targets: Vec<&[u32]> = tokens.iter().map(|t| t.as_slice()).collect();
        block_cross_entropy(&logits, &self.layout, &targets, weights)
    }

    /// Conditional distribution of attribute `attr` for every batch row,
    /// given the tokens of attributes `< attr` (later columns are ignored by
    /// construction — pass placeholders).
    pub fn conditional_dists(
        &self,
        store: &ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
        attr: usize,
    ) -> Vec<Vec<f32>> {
        let mut session = InferenceSession::new();
        let mut out = Vec::new();
        self.conditional_dists_in(&mut session, store, tokens, ctx, attr, &mut out);
        out
    }

    /// [`Made::conditional_dists`] over a caller-owned session *and* output
    /// buffer — the completion engine keeps one session per worker warm
    /// across batches, and `out` is resized and refilled in place (inner
    /// vectors reused) instead of allocating per-row softmax results on
    /// every call.
    #[allow(clippy::too_many_arguments)]
    pub fn conditional_dists_in(
        &self,
        session: &mut InferenceSession,
        store: &ParamStore,
        tokens: &[Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
        attr: usize,
        out: &mut Vec<Vec<f32>>,
    ) {
        let block = self.logits_attr_in(session, store, tokens, ctx, attr);
        let card = block.cols();
        out.resize_with(block.rows(), Vec::new);
        for (r, d) in out.iter_mut().enumerate() {
            d.resize(card, 0.0);
            softmax_into(block.row(r), d);
        }
    }

    /// Iterative forward sampling (§3.1): fills token columns
    /// `start..num_attrs` by repeatedly predicting `p(x_i | x_{<i})` and
    /// sampling. `excluded[a]` optionally names a token whose probability is
    /// zeroed before sampling (used to forbid the MASK token of tuple
    /// factors at generation time).
    pub fn sample_suffix<R: Rng>(
        &self,
        store: &ParamStore,
        tokens: &mut [Vec<u32>],
        ctx: Option<&Matrix>,
        start: usize,
        excluded: &[Option<u32>],
        rng: &mut R,
    ) {
        self.sample_range(store, tokens, ctx, start, self.num_attrs(), excluded, rng)
    }

    /// Like [`Made::sample_suffix`] but stops after attribute `end − 1` —
    /// used by Algorithm 1 to sample one table's attribute block (or a
    /// single tuple factor) at a time. Convenience wrapper over
    /// [`Made::sample_range_in`] with a throwaway session.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_range<R: Rng>(
        &self,
        store: &ParamStore,
        tokens: &mut [Vec<u32>],
        ctx: Option<&Matrix>,
        start: usize,
        end: usize,
        excluded: &[Option<u32>],
        rng: &mut R,
    ) {
        let mut session = InferenceSession::new();
        let mut cols: Vec<Arc<Vec<u32>>> = tokens
            .iter_mut()
            .map(|t| Arc::new(std::mem::take(t)))
            .collect();
        self.sample_range_in(
            &mut session,
            store,
            &mut cols,
            ctx,
            start,
            end,
            excluded,
            rng,
        );
        for (t, c) in tokens.iter_mut().zip(cols) {
            *t = Arc::try_unwrap(c).unwrap_or_else(|a| (*a).clone());
        }
    }

    /// Batched iterative forward sampling on the no-grad engine: one
    /// gradient-free logit-block evaluation per attribute fills that
    /// attribute for **all** batch rows at once. Token columns are updated
    /// in place (`Arc::make_mut` — the session never retains them, so no
    /// copies happen). Rows are sampled in order, one RNG draw per row per
    /// attribute, so the draw sequence is a pure function of `(tokens,
    /// start, end, rng state)`.
    ///
    /// With [`MadeConfig::incremental_sweep`] on (the default) the
    /// attribute loop runs on the band-incremental sweep: the trunk is
    /// evaluated up to degree `start` once, and each step recomputes only
    /// the hidden band whose degree equals the attribute being sampled —
    /// bit-identical to the full-recompute escape-hatch path below, at
    /// roughly one trunk forward's GEMM cost for the whole range.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_range_in<R: Rng>(
        &self,
        session: &mut InferenceSession,
        store: &ParamStore,
        tokens: &mut [Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
        start: usize,
        end: usize,
        excluded: &[Option<u32>],
        rng: &mut R,
    ) {
        assert_eq!(tokens.len(), self.num_attrs());
        assert!(end <= self.num_attrs() && start <= end);
        assert!(excluded.is_empty() || excluded.len() == self.num_attrs());
        let m = tokens.first().map_or(0, |t| t.len());
        if m == 0 || start == end {
            return;
        }
        if self.cfg.incremental_sweep {
            return self.sample_range_sweep(session, store, tokens, ctx, start, end, excluded, rng);
        }
        // Full-recompute reference path (escape hatch): one complete trunk
        // forward per attribute. Sampling scratch is hoisted out of the
        // attribute loop.
        let mut dist = Vec::new();
        let mut sampled = Vec::new();
        for attr in start..end {
            let block = self.logits_attr_full_in(session, store, tokens, ctx, attr);
            sample_block_rows(
                block,
                excluded.get(attr).copied().flatten(),
                &mut dist,
                &mut sampled,
                rng,
            );
            Arc::make_mut(&mut tokens[attr]).copy_from_slice(&sampled);
        }
    }

    /// The band-incremental form of [`Made::sample_range_in`]: a setup
    /// pass computes all hidden bands of degree `≤ start`, then step
    /// `attr` refreshes the just-sampled attribute's embedding block in
    /// the cached trunk input and computes only the degree-`attr` band per
    /// layer before evaluating that attribute's logit block.
    #[allow(clippy::too_many_arguments)]
    fn sample_range_sweep<R: Rng>(
        &self,
        session: &mut InferenceSession,
        store: &ParamStore,
        tokens: &mut [Arc<Vec<u32>>],
        ctx: Option<&Matrix>,
        start: usize,
        end: usize,
        excluded: &[Option<u32>],
        rng: &mut R,
    ) {
        let net = self.sweep_net();
        let (sweep, masked) = session.sweep_parts();
        self.sweep_begin(&net, sweep, store, tokens, ctx, start);
        for attr in start..end {
            if attr > start {
                let prev = attr - 1;
                sweep.gather_x_block(
                    self.embed_offsets[prev],
                    store.value(self.embeddings[prev].param_id()),
                    &tokens[prev],
                );
                sweep.compute(&net, attr..attr + 1);
            }
            let (off, card) = self.layout.block(attr);
            sweep.output_block(masked, store, &self.output_layer, off..off + card);
            let ArSweep {
                logits,
                dist,
                sampled,
                ..
            } = &mut *sweep;
            sample_block_rows(
                logits,
                excluded.get(attr).copied().flatten(),
                dist,
                sampled,
                rng,
            );
            Arc::make_mut(&mut tokens[attr]).copy_from_slice(sampled);
        }
    }
}

/// Samples one token per row from a logits block: per row, in order, a
/// softmax into `dist`, optional excluded-token renormalization, then one
/// categorical draw. `dist` and `sampled` are caller-owned scratch —
/// hoisted out of the per-attribute loop so steady-state sampling
/// allocates nothing.
fn sample_block_rows<R: Rng>(
    block: &Matrix,
    excluded: Option<u32>,
    dist: &mut Vec<f32>,
    sampled: &mut Vec<u32>,
    rng: &mut R,
) {
    dist.resize(block.cols(), 0.0);
    sampled.clear();
    for r in 0..block.rows() {
        softmax_into(block.row(r), dist);
        if let Some(ex) = excluded {
            let ex = ex as usize;
            if ex < dist.len() {
                dist[ex] = 0.0;
                let s: f32 = dist.iter().sum();
                if s > 0.0 {
                    for d in dist.iter_mut() {
                        *d /= s;
                    }
                } else {
                    // Degenerate: everything but the excluded token had
                    // zero mass; fall back to uniform.
                    let n = dist.len();
                    for (i, d) in dist.iter_mut().enumerate() {
                        *d = if i == ex {
                            0.0
                        } else {
                            1.0 / (n - 1).max(1) as f32
                        };
                    }
                }
            }
        }
        sampled.push(sample_categorical(dist, rng));
    }
}

/// Samples an index from an (assumed normalized) categorical distribution.
pub fn sample_categorical<R: Rng>(dist: &[f32], rng: &mut R) -> u32 {
    let u: f32 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if u < acc {
            return i as u32;
        }
    }
    (dist.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_model(cards: &[usize], ctx: usize, seed: u64) -> (Made, ParamStore) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let attrs = cards.iter().map(|&c| AttrSpec::new(c, 4)).collect();
        let cfg = MadeConfig::new(attrs)
            .with_ctx(ctx)
            .with_hidden(vec![32, 32]);
        let made = Made::new(cfg, &mut store, &mut rng);
        (made, store)
    }

    #[test]
    fn autoregressive_property_holds() {
        // Changing attribute j must not change the conditional of any
        // attribute i <= j.
        let (made, store) = make_model(&[5, 5, 5], 0, 7);
        let base: Vec<Arc<Vec<u32>>> =
            vec![Arc::new(vec![1]), Arc::new(vec![2]), Arc::new(vec![3])];
        let logits_base = made.logits(&store, &base, None);
        for j in 0..3 {
            let mut toks = base.clone();
            toks[j] = Arc::new(vec![4]);
            let logits = made.logits(&store, &toks, None);
            for i in 0..=j {
                let (off, card) = made.layout().block(i);
                for c in off..off + card {
                    assert_eq!(
                        logits_base.get(0, c),
                        logits.get(0, c),
                        "output block {i} changed when perturbing attr {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn context_influences_all_outputs() {
        let (made, store) = make_model(&[4, 4], 3, 8);
        let toks: Vec<Arc<Vec<u32>>> = vec![Arc::new(vec![0]), Arc::new(vec![0])];
        let c1 = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        let c2 = Matrix::from_rows(&[&[0.0, 5.0, -3.0]]);
        let l1 = made.logits(&store, &toks, Some(&c1));
        let l2 = made.logits(&store, &toks, Some(&c2));
        let (off0, card0) = made.layout().block(0);
        let changed0 = (off0..off0 + card0).any(|c| l1.get(0, c) != l2.get(0, c));
        assert!(changed0, "context did not reach attribute 0");
    }

    #[test]
    fn learns_deterministic_dependency() {
        // x1 = (x0 + 1) mod 4 — after training, p(x1 | x0) should put most
        // mass on the right token.
        let mut rng = StdRng::seed_from_u64(42);
        let (made, mut store) = make_model(&[4, 4], 0, 9);
        let mut adam = Adam::new(&store, 5e-3);
        let n = 256;
        let x0: Vec<u32> = (0..n).map(|i| (i % 4) as u32).collect();
        let x1: Vec<u32> = x0.iter().map(|&v| (v + 1) % 4).collect();
        let cols = vec![Arc::new(x0.clone()), Arc::new(x1.clone())];
        for _ in 0..200 {
            let mut tape = Tape::new();
            let out = made.forward(&mut tape, &store, &cols, None);
            let targets = vec![x0.clone(), x1.clone()];
            let loss = block_cross_entropy(tape.value(out), made.layout(), &targets, None);
            tape.backward(out, loss.dlogits, &mut store);
            store.clip_grad_norm(5.0);
            adam.step(&mut store);
        }
        // Check the learned conditional.
        for v in 0..4u32 {
            let toks = vec![Arc::new(vec![v]), Arc::new(vec![0])];
            let dist = made.conditional_dists(&store, &toks, None, 1);
            let argmax = dist[0]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0 as u32;
            assert_eq!(argmax, (v + 1) % 4, "p(x1|x0={v}) put mass on {argmax}");
        }
        // And sampling follows it.
        let mut toks = vec![vec![2u32; 64], vec![0u32; 64]];
        made.sample_suffix(&store, &mut toks, None, 1, &[], &mut rng);
        let right = toks[1].iter().filter(|&&t| t == 3).count();
        assert!(
            right > 48,
            "sampling followed the conditional only {right}/64 times"
        );
    }

    #[test]
    fn excluded_token_is_never_sampled() {
        let (made, store) = make_model(&[3, 5], 0, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut toks = vec![vec![0u32; 200], vec![0u32; 200]];
        made.sample_suffix(&store, &mut toks, None, 1, &[None, Some(4)], &mut rng);
        assert!(
            toks[1].iter().all(|&t| t != 4),
            "excluded token was sampled"
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (made, store) = make_model(&[3, 3], 0, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let mut toks = vec![vec![], vec![]];
        made.sample_suffix(&store, &mut toks, None, 0, &[], &mut rng);
        assert!(toks[0].is_empty());
        let loss = made.evaluate(&store, &[Arc::new(vec![]), Arc::new(vec![])], None, None);
        assert_eq!(loss.loss, 0.0);
    }

    #[test]
    fn sample_categorical_is_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(14);
        let dist = vec![0.1, 0.6, 0.3];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_categorical(&dist, &mut rng) as usize] += 1;
        }
        assert!((counts[1] as f32 / 3000.0 - 0.6).abs() < 0.05);
    }
}
