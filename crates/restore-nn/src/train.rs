//! The data-parallel training engine.
//!
//! One gradient step splits its batch into **microbatches of a fixed size**
//! (a pure function of the row list — never of the worker count), runs each
//! microbatch's forward + backward on a worker thread with a per-worker
//! reusable arena [`Tape`], and reduces the per-microbatch [`GradBuffer`]s
//! into the store **in ascending microbatch order**. Because every
//! microbatch gradient is computed independently and the reduction tree is
//! pinned, a training run is bit-identical under any worker count — the
//! same contract the batched completion sampler already honours.
//!
//! Steady-state allocation behaviour: tapes keep their node/value/grad
//! arenas across steps ([`Tape::reset`]), and gradient buffers cycle
//! through a pool, so after warm-up a step of an unchanged shape performs
//! no heap allocation in the engine itself.

use std::sync::Mutex;

use restore_util::parallel_map_with;

use crate::params::{GradBuffer, ParamStore};
use crate::tape::Tape;

/// Data-parallel gradient stepper: owns one reusable [`Tape`] per worker
/// and a recycled pool of [`GradBuffer`]s.
pub struct TrainEngine {
    tapes: Vec<Tape>,
    pool: Vec<GradBuffer>,
}

impl TrainEngine {
    /// An engine with `workers` worker slots (`0` is clamped to 1).
    pub fn new(workers: usize) -> Self {
        Self {
            tapes: (0..workers.max(1)).map(|_| Tape::new()).collect(),
            pool: Vec::new(),
        }
    }

    pub fn workers(&self) -> usize {
        self.tapes.len()
    }

    /// Runs one data-parallel gradient step over `rows`, split into
    /// microbatches of `micro` rows.
    ///
    /// `f(tape, store, chunk, grads)` computes one microbatch's forward and
    /// backward pass — recording on `tape` (already reset), reading
    /// parameters from `store`, accumulating parameter gradients into
    /// `grads` — and returns the microbatch's *summed* (unnormalized) loss.
    /// The engine reduces all gradient buffers into `store`'s resident
    /// gradients in ascending microbatch order and returns the summed loss;
    /// the caller normalizes, clips, and steps the optimizer.
    ///
    /// On error the partial reduction is discarded (resident gradients are
    /// zeroed) and the first microbatch error is returned.
    pub fn step<E, F>(
        &mut self,
        store: &mut ParamStore,
        rows: &[usize],
        micro: usize,
        f: F,
    ) -> Result<f64, E>
    where
        E: Send,
        F: Fn(&mut Tape, &ParamStore, &[usize], &mut GradBuffer) -> Result<f64, E> + Sync,
    {
        let micro = micro.max(1);
        let jobs: Vec<&[usize]> = rows.chunks(micro).collect();
        let pool = Mutex::new(std::mem::take(&mut self.pool));
        let results = {
            let store = &*store;
            parallel_map_with(jobs, &mut self.tapes, |tape, chunk| {
                let mut grads = {
                    let mut pool = pool.lock().unwrap();
                    pool.pop().unwrap_or_else(|| GradBuffer::new(store))
                };
                grads.zero();
                tape.reset();
                f(tape, store, chunk, &mut grads).map(|loss_sum| (loss_sum, grads))
            })
        };
        self.pool = pool.into_inner().unwrap();

        let mut loss_sum = 0.0f64;
        let mut first_err = None;
        for res in results {
            match res {
                Ok((l, g)) => {
                    if first_err.is_none() {
                        loss_sum += l;
                        store.accumulate_from(&g);
                    }
                    self.pool.push(g);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            store.zero_grads();
            return Err(e);
        }
        Ok(loss_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::Forward;
    use crate::loss::{block_cross_entropy_sums, BlockLayout};
    use crate::made::{AttrSpec, Made, MadeConfig};
    use crate::optim::Adam;
    use crate::tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::convert::Infallible;
    use std::sync::Arc;

    fn training_setup(seed: u64) -> (Made, ParamStore, Vec<Vec<u32>>, BlockLayout) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let cards = [5usize, 7, 4];
        let attrs = cards.iter().map(|&c| AttrSpec::new(c, 4)).collect();
        let made = Made::new(
            MadeConfig::new(attrs).with_hidden(vec![24, 24]),
            &mut store,
            &mut rng,
        );
        let n = 96;
        let tokens: Vec<Vec<u32>> = cards
            .iter()
            .map(|&c| {
                (0..n as u32)
                    .map(|r| (r * 7 + c as u32) % c as u32)
                    .collect()
            })
            .collect();
        let layout = made.layout().clone();
        (made, store, tokens, layout)
    }

    fn train_steps(workers: usize, micro: usize, steps: usize) -> ParamStore {
        let (made, mut store, tokens, layout) = training_setup(5);
        let mut engine = TrainEngine::new(workers);
        let mut adam = Adam::new(&store, 1e-2);
        let rows: Vec<usize> = (0..tokens[0].len()).collect();
        let w_total = (tokens.len() * rows.len()) as f64;
        let norm = 1.0 / w_total as f32;
        for _ in 0..steps {
            let made = &made;
            let tokens = &tokens;
            let layout = &layout;
            engine
                .step(&mut store, &rows, micro, |tape, store, chunk, grads| {
                    let btoks: Vec<Vec<u32>> = tokens
                        .iter()
                        .map(|col| chunk.iter().map(|&r| col[r]).collect())
                        .collect();
                    let arc: Vec<Arc<Vec<u32>>> = btoks.iter().cloned().map(Arc::new).collect();
                    let mut f = tape.ctx(store);
                    let logits = made.forward(&mut f, store, &arc, None);
                    let sums = block_cross_entropy_sums(f.value(logits), layout, &btoks, None);
                    let mut dl = sums.dlogits;
                    dl.scale_assign(norm);
                    tape.backward_with(logits, dl, store, grads);
                    Ok::<f64, Infallible>(sums.loss_sum)
                })
                .unwrap();
            store.clip_grad_norm(5.0);
            adam.step(&mut store);
        }
        store
    }

    /// The tentpole contract: parameters after training are bit-identical
    /// under any worker count, because microbatch gradients are independent
    /// and the reduction order is pinned.
    #[test]
    fn worker_count_never_changes_the_parameters() {
        let base = train_steps(1, 16, 6);
        for workers in [2, 4, 8] {
            let other = train_steps(workers, 16, 6);
            assert_eq!(base.len(), other.len());
            for id in 0..base.len() {
                assert_eq!(
                    base.value(id),
                    other.value(id),
                    "param {id} diverged at {workers} workers"
                );
            }
        }
    }

    /// Splitting the batch into microbatches must match the mathematically
    /// equivalent full-batch gradient closely (not bitwise — the reduction
    /// tree differs — but far beyond statistical noise).
    #[test]
    fn microbatched_gradient_matches_full_batch() {
        let a = train_steps(1, 96, 4); // one microbatch = the whole batch
        let b = train_steps(1, 16, 4);
        for id in 0..a.len() {
            for (x, y) in a.value(id).data().iter().zip(b.value(id).data()) {
                assert!(
                    (x - y).abs() < 1e-4,
                    "param {id} drifted: {x} vs {y} (full vs microbatched)"
                );
            }
        }
    }

    /// Errors abort the step and leave the resident gradients clean.
    #[test]
    fn errors_discard_the_partial_reduction() {
        let (_, mut store, tokens, _) = training_setup(6);
        let mut engine = TrainEngine::new(2);
        let rows: Vec<usize> = (0..tokens[0].len()).collect();
        let err = engine.step(&mut store, &rows, 8, |_tape, store, chunk, grads| {
            if chunk[0] >= 40 {
                Err("boom")
            } else {
                grads.accumulate(
                    0,
                    &Matrix::filled(store.value(0).rows(), store.value(0).cols(), 1.0),
                );
                Ok(1.0)
            }
        });
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(store.grad_norm(), 0.0, "partial gradients leaked");
    }
}
