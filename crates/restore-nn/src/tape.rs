//! A small tape-based reverse-mode automatic differentiation engine.
//!
//! The tape records every operation of a forward pass as a [`Node`]; calling
//! [`Tape::backward`] walks the nodes in reverse and accumulates gradients.
//! Parameter leaves remember their [`ParamId`] so gradients can be flushed
//! back into the [`ParamStore`] afterwards.
//!
//! Only the operations the ReStore models need are implemented: (masked)
//! matrix multiplication, bias broadcast, element-wise add, ReLU, column
//! concatenation, embedding gather, and segment-sum pooling (for DeepSets).

use std::sync::Arc;

use crate::infer::Forward;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Matrix;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarId(usize);

enum Op {
    /// Input or parameter leaf. `param` is `Some` for trainable leaves.
    Leaf { param: Option<ParamId> },
    /// `x · w`
    MatMul { x: VarId, w: VarId },
    /// `x · (w ⊙ mask)` — used by MADE masked linear layers.
    MaskedMatMul {
        x: VarId,
        w: VarId,
        mask: Arc<Matrix>,
    },
    /// Broadcast-add a `1 × n` bias row to every row of `x`.
    AddRow { x: VarId, bias: VarId },
    /// Element-wise addition of equally shaped values.
    Add { a: VarId, b: VarId },
    /// Element-wise `max(0, x)`.
    Relu { x: VarId },
    /// Column-wise concatenation.
    ConcatCols { parts: Vec<VarId> },
    /// Gather rows of an embedding matrix: `out[i] = table[idx[i]]`.
    Gather { table: VarId, idx: Arc<Vec<u32>> },
    /// Segment sum: `out[seg[i]] += x[i]`, with `n_segments` output rows.
    SegmentSum {
        x: VarId,
        seg: Arc<Vec<u32>>,
        n_segments: usize,
    },
    /// Scalar multiplication.
    Scale { x: VarId, s: f32 },
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Option<Matrix>,
}

/// Records a forward pass; consumed by [`Tape::backward`].
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current value of `v`.
    pub fn value(&self, v: VarId) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of `v` after [`Tape::backward`], if any reached it.
    pub fn grad(&self, v: VarId) -> Option<&Matrix> {
        self.nodes[v.0].grad.as_ref()
    }

    fn push(&mut self, op: Op, value: Matrix) -> VarId {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        VarId(self.nodes.len() - 1)
    }

    /// Records a non-trainable input leaf.
    pub fn input(&mut self, value: Matrix) -> VarId {
        self.push(Op::Leaf { param: None }, value)
    }

    /// Records a trainable parameter leaf with the store's current value.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        self.push(Op::Leaf { param: Some(id) }, store.value(id).clone())
    }

    pub fn matmul(&mut self, x: VarId, w: VarId) -> VarId {
        let value = self.value(x).matmul(self.value(w));
        self.push(Op::MatMul { x, w }, value)
    }

    /// Masked matmul `x · (w ⊙ mask)`; the mask is applied on the fly so the
    /// stored parameter stays dense and the optimizer never sees the mask.
    pub fn masked_matmul(&mut self, x: VarId, w: VarId, mask: Arc<Matrix>) -> VarId {
        assert_eq!(self.value(w).shape(), mask.shape(), "mask shape mismatch");
        let masked = self.value(w).hadamard(&mask);
        let value = self.value(x).matmul(&masked);
        self.push(Op::MaskedMatMul { x, w, mask }, value)
    }

    pub fn add_row(&mut self, x: VarId, bias: VarId) -> VarId {
        let (xr, xc) = self.value(x).shape();
        let b = self.value(bias);
        assert_eq!(b.shape(), (1, xc), "bias must be 1 x cols");
        let mut value = self.value(x).clone();
        for r in 0..xr {
            let row = value.row_mut(r);
            for (v, bv) in row.iter_mut().zip(b.row(0)) {
                *v += bv;
            }
        }
        // `b` borrow ends before push
        let _ = b;
        self.push(Op::AddRow { x, bias }, value)
    }

    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut value = self.value(a).clone();
        value.add_assign(self.value(b));
        self.push(Op::Add { a, b }, value)
    }

    pub fn relu(&mut self, x: VarId) -> VarId {
        let mut value = self.value(x).clone();
        for v in value.data_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        self.push(Op::Relu { x }, value)
    }

    pub fn scale(&mut self, x: VarId, s: f32) -> VarId {
        let mut value = self.value(x).clone();
        value.scale_assign(s);
        self.push(Op::Scale { x, s }, value)
    }

    /// Concatenates values column-wise. All parts must share the row count.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat of zero parts");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|p| self.value(*p).cols()).sum();
        let mut value = Matrix::zeros(rows, total);
        let mut offset = 0;
        for p in parts {
            let m = self.value(*p);
            assert_eq!(m.rows(), rows, "concat row mismatch");
            let c = m.cols();
            for r in 0..rows {
                value.row_mut(r)[offset..offset + c].copy_from_slice(m.row(r));
            }
            offset += c;
        }
        self.push(
            Op::ConcatCols {
                parts: parts.to_vec(),
            },
            value,
        )
    }

    /// Embedding lookup: row `i` of the output is row `idx[i]` of `table`.
    pub fn gather(&mut self, table: VarId, idx: Arc<Vec<u32>>) -> VarId {
        let t = self.value(table);
        let cols = t.cols();
        let mut value = Matrix::zeros(idx.len(), cols);
        for (i, &ix) in idx.iter().enumerate() {
            let ix = ix as usize;
            assert!(ix < t.rows(), "gather index {ix} out of range {}", t.rows());
            value.row_mut(i).copy_from_slice(t.row(ix));
        }
        let _ = t;
        self.push(Op::Gather { table, idx }, value)
    }

    /// Sum-pooling by segment: output row `s` is the sum of input rows `i`
    /// with `seg[i] == s`. Segments with no members stay zero — exactly the
    /// behaviour DeepSets needs for empty evidence sets.
    pub fn segment_sum(&mut self, x: VarId, seg: Arc<Vec<u32>>, n_segments: usize) -> VarId {
        let m = self.value(x);
        assert_eq!(m.rows(), seg.len(), "segment ids must cover all rows");
        let cols = m.cols();
        let mut value = Matrix::zeros(n_segments, cols);
        for (i, &s) in seg.iter().enumerate() {
            let s = s as usize;
            assert!(s < n_segments, "segment id {s} out of range {n_segments}");
            let src = m.row(i).to_vec();
            for (o, v) in value.row_mut(s).iter_mut().zip(&src) {
                *o += v;
            }
        }
        let _ = m;
        self.push(Op::SegmentSum { x, seg, n_segments }, value)
    }

    fn accumulate(&mut self, v: VarId, delta: Matrix) {
        match &mut self.nodes[v.0].grad {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Runs reverse-mode differentiation seeding `root`'s gradient with
    /// `seed` (same shape as `root`'s value), then flushes parameter
    /// gradients into `store`.
    pub fn backward(&mut self, root: VarId, seed: Matrix, store: &mut ParamStore) {
        assert_eq!(
            self.value(root).shape(),
            seed.shape(),
            "seed gradient shape mismatch"
        );
        self.accumulate(root, seed);

        for i in (0..=root.0).rev() {
            let Some(grad) = self.nodes[i].grad.take() else {
                continue;
            };
            // Re-insert so callers can inspect grads after backward.
            self.nodes[i].grad = Some(grad.clone());
            // Split borrows: read-only access to earlier nodes via raw index.
            match &self.nodes[i].op {
                Op::Leaf { param } => {
                    if let Some(pid) = *param {
                        store.accumulate_grad(pid, &grad);
                    }
                }
                Op::MatMul { x, w } => {
                    let (x, w) = (*x, *w);
                    let dx = grad.matmul_t(self.value(w));
                    let dw = self.value(x).t_matmul(&grad);
                    self.accumulate(x, dx);
                    self.accumulate(w, dw);
                }
                Op::MaskedMatMul { x, w, mask } => {
                    let (x, w, mask) = (*x, *w, Arc::clone(mask));
                    let masked = self.value(w).hadamard(&mask);
                    let dx = grad.matmul_t(&masked);
                    let dw = self.value(x).t_matmul(&grad).hadamard(&mask);
                    self.accumulate(x, dx);
                    self.accumulate(w, dw);
                }
                Op::AddRow { x, bias } => {
                    let (x, bias) = (*x, *bias);
                    let db = grad.col_sums();
                    self.accumulate(x, grad);
                    self.accumulate(bias, db);
                }
                Op::Add { a, b } => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad);
                }
                Op::Relu { x } => {
                    let x = *x;
                    let mut dx = grad;
                    for (d, v) in dx.data_mut().iter_mut().zip(self.nodes[x.0].value.data()) {
                        if *v <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    self.accumulate(x, dx);
                }
                Op::ConcatCols { parts } => {
                    let parts = parts.clone();
                    let mut offset = 0;
                    for p in parts {
                        let c = self.value(p).cols();
                        let rows = grad.rows();
                        let mut dp = Matrix::zeros(rows, c);
                        for r in 0..rows {
                            dp.row_mut(r)
                                .copy_from_slice(&grad.row(r)[offset..offset + c]);
                        }
                        offset += c;
                        self.accumulate(p, dp);
                    }
                }
                Op::Gather { table, idx } => {
                    let (table, idx) = (*table, Arc::clone(idx));
                    let (vr, vc) = self.value(table).shape();
                    let mut dt = Matrix::zeros(vr, vc);
                    for (i, &ix) in idx.iter().enumerate() {
                        let src = grad.row(i);
                        let dst = dt.row_mut(ix as usize);
                        for (d, g) in dst.iter_mut().zip(src) {
                            *d += g;
                        }
                    }
                    self.accumulate(table, dt);
                }
                Op::SegmentSum { x, seg, n_segments } => {
                    debug_assert_eq!(grad.rows(), *n_segments);
                    let (x, seg) = (*x, Arc::clone(seg));
                    let cols = grad.cols();
                    let mut dx = Matrix::zeros(seg.len(), cols);
                    for (i, &s) in seg.iter().enumerate() {
                        dx.row_mut(i).copy_from_slice(grad.row(s as usize));
                    }
                    self.accumulate(x, dx);
                }
                Op::Scale { x, s } => {
                    let (x, s) = (*x, *s);
                    let mut dx = grad;
                    dx.scale_assign(s);
                    self.accumulate(x, dx);
                }
            }
        }
    }
}

/// The tape records ops instead of just evaluating them; layer definitions
/// written against [`Forward`] drive training through this impl and
/// inference through [`crate::infer::InferCtx`].
impl Forward for Tape {
    type Id = VarId;

    fn input(&mut self, value: &Matrix) -> VarId {
        Tape::input(self, value.clone())
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        Tape::param(self, store, id)
    }

    fn matmul(&mut self, x: VarId, w: VarId) -> VarId {
        Tape::matmul(self, x, w)
    }

    fn masked_matmul(&mut self, x: VarId, w: VarId, mask: &Arc<Matrix>) -> VarId {
        Tape::masked_matmul(self, x, w, Arc::clone(mask))
    }

    fn add_row(&mut self, x: VarId, bias: VarId) -> VarId {
        Tape::add_row(self, x, bias)
    }

    fn add(&mut self, a: VarId, b: VarId) -> VarId {
        Tape::add(self, a, b)
    }

    fn relu(&mut self, x: VarId) -> VarId {
        Tape::relu(self, x)
    }

    fn scale(&mut self, x: VarId, s: f32) -> VarId {
        Tape::scale(self, x, s)
    }

    fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        Tape::concat_cols(self, parts)
    }

    fn gather(&mut self, table: VarId, idx: &Arc<Vec<u32>>) -> VarId {
        Tape::gather(self, table, Arc::clone(idx))
    }

    fn segment_sum(&mut self, x: VarId, seg: &Arc<Vec<u32>>, n_segments: usize) -> VarId {
        Tape::segment_sum(self, x, Arc::clone(seg), n_segments)
    }

    fn value(&self, id: VarId) -> &Matrix {
        Tape::value(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check<F>(param_shape: (usize, usize), mut f: F, seed: u64)
    where
        F: FnMut(&mut Tape, VarId) -> VarId,
    {
        // Scalar-output finite-difference gradient check for a single param.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let pid = store.register(Matrix::rand_uniform(
            param_shape.0,
            param_shape.1,
            -0.8,
            0.8,
            &mut rng,
        ));

        // Analytic gradient.
        let mut tape = Tape::new();
        let p = tape.param(&store, pid);
        let out = f(&mut tape, p);
        let (or, oc) = tape.value(out).shape();
        store.zero_grads();
        tape.backward(out, Matrix::filled(or, oc, 1.0), &mut store);
        let analytic = store.grad(pid).clone();

        // Numeric gradient of sum(out).
        let eps = 1e-3f32;
        for i in 0..param_shape.0 {
            for j in 0..param_shape.1 {
                let orig = store.value(pid).get(i, j);
                let eval = |store: &ParamStore, f: &mut F| -> f32 {
                    let mut t = Tape::new();
                    let p = t.param(store, pid);
                    let o = f(&mut t, p);
                    t.value(o).data().iter().sum()
                };
                store.value_mut(pid).set(i, j, orig + eps);
                let up = eval(&store, &mut f);
                store.value_mut(pid).set(i, j, orig - eps);
                let down = eval(&store, &mut f);
                store.value_mut(pid).set(i, j, orig);
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic.get(i, j);
                assert!(
                    (a - numeric).abs() < 1e-2 * (1.0 + a.abs().max(numeric.abs())),
                    "grad mismatch at ({i},{j}): analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn matmul_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.25, -0.75]]);
        finite_diff_check(
            (3, 4),
            move |tape, p| {
                let xi = tape.input(x.clone());
                tape.matmul(xi, p)
            },
            10,
        );
    }

    #[test]
    fn masked_matmul_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.25, -0.75]]);
        let mask = Arc::new(Matrix::from_rows(&[
            &[1.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
        ]));
        finite_diff_check(
            (3, 4),
            move |tape, p| {
                let xi = tape.input(x.clone());
                tape.masked_matmul(xi, p, Arc::clone(&mask))
            },
            11,
        );
    }

    #[test]
    fn relu_chain_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.25]]);
        finite_diff_check(
            (2, 3),
            move |tape, p| {
                let xi = tape.input(x.clone());
                let h = tape.matmul(xi, p);
                tape.relu(h)
            },
            12,
        );
    }

    #[test]
    fn bias_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.5, -1.0, 0.25], &[1.5, 0.25, -2.0]]);
        finite_diff_check(
            (1, 3),
            move |tape, p| {
                let xi = tape.input(x.clone());
                tape.add_row(xi, p)
            },
            13,
        );
    }

    #[test]
    fn gather_gradient_accumulates_duplicates() {
        let mut store = ParamStore::new();
        let pid = store.register(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mut tape = Tape::new();
        let table = tape.param(&store, pid);
        let out = tape.gather(table, Arc::new(vec![0, 1, 0]));
        tape.backward(out, Matrix::filled(3, 2, 1.0), &mut store);
        // Row 0 gathered twice -> grad 2, row 1 once -> grad 1.
        assert_eq!(store.grad(pid).row(0), &[2.0, 2.0]);
        assert_eq!(store.grad(pid).row(1), &[1.0, 1.0]);
    }

    #[test]
    fn segment_sum_pools_and_backprops() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0], &[2.0], &[4.0]]));
        let out = tape.segment_sum(x, Arc::new(vec![1, 1, 0]), 3);
        assert_eq!(tape.value(out).row(0), &[4.0]);
        assert_eq!(tape.value(out).row(1), &[3.0]);
        assert_eq!(tape.value(out).row(2), &[0.0]); // empty segment
        let mut seed = Matrix::zeros(3, 1);
        seed.set(1, 0, 1.0);
        tape.backward(out, seed, &mut store);
        let gx = tape.grad(x).unwrap();
        assert_eq!(gx.data(), &[1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_splits_gradient() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let a = tape.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = tape.input(Matrix::from_rows(&[&[3.0]]));
        let out = tape.concat_cols(&[a, b]);
        assert_eq!(tape.value(out).row(0), &[1.0, 2.0, 3.0]);
        tape.backward(out, Matrix::from_rows(&[&[10.0, 20.0, 30.0]]), &mut store);
        assert_eq!(tape.grad(a).unwrap().row(0), &[10.0, 20.0]);
        assert_eq!(tape.grad(b).unwrap().row(0), &[30.0]);
    }

    #[test]
    fn residual_add_gradient_flows_both_ways() {
        let mut store = ParamStore::new();
        let pid = store.register(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let w = tape.param(&store, pid);
        let h = tape.matmul(x, w);
        let out = tape.add(h, x);
        tape.backward(out, Matrix::filled(1, 2, 1.0), &mut store);
        // dx = dy·Wᵀ + dy = [1,1]·I + [1,1] = [2,2]
        assert_eq!(tape.grad(x).unwrap().row(0), &[2.0, 2.0]);
    }
}
