//! A small tape-based reverse-mode automatic differentiation engine,
//! arena-backed so one tape can be reused across training steps.
//!
//! The tape records every operation of a forward pass as an op plus a value
//! slot in a node *arena*; calling [`Tape::backward`] walks the ops in
//! reverse and accumulates gradients into a matching gradient arena.
//! [`Tape::reset`] rewinds the arenas without dropping their matrices, so
//! after the first step of a training run every forward + backward pass of
//! the same shape performs **no heap allocation** — mirroring what
//! [`InferenceSession`](crate::infer::InferenceSession) does for the
//! gradient-free completion path.
//!
//! Two ways to drive it:
//!
//! * the inherent op methods (and the legacy [`Forward`] impl on `Tape`
//!   itself) *materialize* parameter leaves by copying the store's current
//!   values into the arena — the original behaviour, kept for tests and
//!   single-shot uses;
//! * [`Tape::ctx`] borrows the tape together with a [`ParamStore`] and
//!   returns a [`TapeCtx`], whose [`Forward`] impl resolves parameter
//!   leaves **in place** (no copies) — the hot training path.
//!
//! Only the operations the ReStore models need are implemented: (masked)
//! matrix multiplication, bias broadcast, element-wise add, ReLU, column
//! concatenation, embedding gather, and segment-sum pooling (for DeepSets).

use std::sync::Arc;

use crate::infer::Forward;
use crate::params::{GradBuffer, ParamId, ParamStore};
use crate::tensor::Matrix;

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarId(usize);

enum Op {
    /// Input or parameter leaf. `param` is `Some` for trainable leaves.
    Leaf { param: Option<ParamId> },
    /// `x · w`
    MatMul { x: VarId, w: VarId },
    /// `x · (w ⊙ mask)` — used by MADE masked linear layers. `masked`
    /// indexes the arena slot holding the materialized `w ⊙ mask`, which
    /// the backward pass reuses instead of recomputing the hadamard.
    MaskedMatMul {
        x: VarId,
        w: VarId,
        mask: Arc<Matrix>,
        masked: usize,
    },
    /// Broadcast-add a `1 × n` bias row to every row of `x`.
    AddRow { x: VarId, bias: VarId },
    /// Element-wise addition of equally shaped values.
    Add { a: VarId, b: VarId },
    /// Element-wise `max(0, x)`.
    Relu { x: VarId },
    /// Column-wise concatenation; the ids live in the tape's parts arena.
    ConcatCols { parts: std::ops::Range<usize> },
    /// Gather rows of an embedding matrix: `out[i] = table[idx[i]]`.
    Gather { table: VarId, idx: Arc<Vec<u32>> },
    /// Segment sum: `out[seg[i]] += x[i]`, with `n_segments` output rows.
    SegmentSum {
        x: VarId,
        seg: Arc<Vec<u32>>,
        n_segments: usize,
    },
    /// Scalar multiplication.
    Scale { x: VarId, s: f32 },
}

/// Records a forward pass; consumed by [`Tape::backward`]. Reusable via
/// [`Tape::reset`] / [`Tape::ctx`] — the node, gradient, parts, and
/// masked-weight arenas all keep their capacity across passes.
#[derive(Default)]
pub struct Tape {
    ops: Vec<Op>,
    /// Node value arena; `values[i]` is valid iff `materialized[i]`.
    values: Vec<Matrix>,
    materialized: Vec<bool>,
    /// Node gradient arena; `grads[i]` is valid iff `has_grad[i]`.
    grads: Vec<Matrix>,
    has_grad: Vec<bool>,
    /// Backing storage for `Op::ConcatCols` part lists.
    parts: Vec<VarId>,
    /// Materialized `w ⊙ mask` products, one per masked matmul of the pass.
    masked: Vec<Matrix>,
    masked_len: usize,
    /// Live node count of the current pass (`<= values.len()`).
    len: usize,
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arena capacity in nodes (diagnostics: stays flat across reused
    /// passes of the same shape).
    pub fn node_capacity(&self) -> usize {
        self.values.len()
    }

    /// Rewinds the tape for a fresh pass, keeping every arena allocation.
    pub fn reset(&mut self) {
        self.len = 0;
        self.ops.clear();
        self.parts.clear();
        self.masked_len = 0;
        self.materialized.fill(false);
        self.has_grad.fill(false);
    }

    /// Starts a recorded forward pass whose parameter leaves resolve
    /// straight into `store` (no copies). Resets the tape first.
    pub fn ctx<'a>(&'a mut self, store: &'a ParamStore) -> TapeCtx<'a> {
        self.reset();
        TapeCtx { tape: self, store }
    }

    /// The current value of `v`.
    ///
    /// # Panics
    /// Panics for parameter leaves recorded through a [`TapeCtx`] (they
    /// are resolved in the store, not materialized here).
    pub fn value(&self, v: VarId) -> &Matrix {
        self.val(None, v)
    }

    /// Gradient of `v` after [`Tape::backward`], if any reached it.
    pub fn grad(&self, v: VarId) -> Option<&Matrix> {
        self.has_grad[v.0].then(|| &self.grads[v.0])
    }

    fn val<'a>(&'a self, store: Option<&'a ParamStore>, v: VarId) -> &'a Matrix {
        if self.materialized[v.0] {
            return &self.values[v.0];
        }
        match (&self.ops[v.0], store) {
            (Op::Leaf { param: Some(pid) }, Some(s)) => s.value(*pid),
            (Op::Leaf { param: Some(_) }, None) => {
                panic!("parameter leaf is not materialized; resolve it through the store")
            }
            _ => unreachable!("only parameter leaves can be unmaterialized"),
        }
    }

    fn val_shape(&self, store: Option<&ParamStore>, v: VarId) -> (usize, usize) {
        self.val(store, v).shape()
    }

    /// Claims the value slot of the next node, handing the matrix out by
    /// value so the caller can write while reading other arena values.
    fn claim(&mut self) -> (usize, Matrix) {
        if self.len == self.values.len() {
            self.values.push(Matrix::default());
            self.materialized.push(false);
            self.grads.push(Matrix::default());
            self.has_grad.push(false);
        }
        let i = self.len;
        self.len += 1;
        (i, std::mem::take(&mut self.values[i]))
    }

    fn put(&mut self, i: usize, op: Op, value: Matrix) -> VarId {
        self.values[i] = value;
        self.materialized[i] = true;
        self.ops.push(op);
        debug_assert_eq!(self.ops.len(), i + 1, "op/arena cursor drift");
        VarId(i)
    }

    fn claim_masked(&mut self) -> (usize, Matrix) {
        if self.masked_len == self.masked.len() {
            self.masked.push(Matrix::default());
        }
        let i = self.masked_len;
        self.masked_len += 1;
        (i, std::mem::take(&mut self.masked[i]))
    }

    // ---- op recording (store = None → operands must be materialized) ----

    fn do_input(&mut self, value: &Matrix) -> VarId {
        let (i, mut out) = self.claim();
        out.copy_from(value);
        self.put(i, Op::Leaf { param: None }, out)
    }

    fn do_param_ref(&mut self, id: ParamId) -> VarId {
        let (i, buf) = self.claim();
        // Keep the (stale) buffer in the arena slot; the node resolves
        // against the store instead.
        self.values[i] = buf;
        self.ops.push(Op::Leaf { param: Some(id) });
        debug_assert_eq!(self.ops.len(), i + 1, "op/arena cursor drift");
        VarId(i)
    }

    fn do_matmul(&mut self, store: Option<&ParamStore>, x: VarId, w: VarId) -> VarId {
        let (i, mut out) = self.claim();
        {
            let xm = self.val(store, x);
            let wm = self.val(store, w);
            xm.matmul_into(wm, &mut out);
        }
        self.put(i, Op::MatMul { x, w }, out)
    }

    fn do_masked_matmul(
        &mut self,
        store: Option<&ParamStore>,
        x: VarId,
        w: VarId,
        mask: Arc<Matrix>,
    ) -> VarId {
        let (mi, mut mbuf) = self.claim_masked();
        {
            let wm = self.val(store, w);
            assert_eq!(wm.shape(), mask.shape(), "mask shape mismatch");
            mbuf.resize(wm.rows(), wm.cols());
            for ((o, &a), &b) in mbuf.data_mut().iter_mut().zip(wm.data()).zip(mask.data()) {
                *o = a * b;
            }
        }
        self.masked[mi] = mbuf;
        let (i, mut out) = self.claim();
        {
            let xm = self.val(store, x);
            xm.matmul_into(&self.masked[mi], &mut out);
        }
        self.put(
            i,
            Op::MaskedMatMul {
                x,
                w,
                mask,
                masked: mi,
            },
            out,
        )
    }

    fn do_add_row(&mut self, store: Option<&ParamStore>, x: VarId, bias: VarId) -> VarId {
        let (i, mut out) = self.claim();
        {
            let xm = self.val(store, x);
            let b = self.val(store, bias);
            assert_eq!(b.shape(), (1, xm.cols()), "bias must be 1 x cols");
            out.resize(xm.rows(), xm.cols());
            let bias_row = b.row(0);
            for r in 0..xm.rows() {
                let src = xm.row(r);
                let dst = &mut out.data_mut()[r * src.len()..(r + 1) * src.len()];
                for ((o, &v), &bv) in dst.iter_mut().zip(src).zip(bias_row) {
                    *o = v + bv;
                }
            }
        }
        self.put(i, Op::AddRow { x, bias }, out)
    }

    fn do_add(&mut self, store: Option<&ParamStore>, a: VarId, b: VarId) -> VarId {
        let (i, mut out) = self.claim();
        {
            let am = self.val(store, a);
            let bm = self.val(store, b);
            assert_eq!(am.shape(), bm.shape(), "add shape mismatch");
            out.resize(am.rows(), am.cols());
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(am.data()).zip(bm.data()) {
                *o = x + y;
            }
        }
        self.put(i, Op::Add { a, b }, out)
    }

    fn do_relu(&mut self, store: Option<&ParamStore>, x: VarId) -> VarId {
        let (i, mut out) = self.claim();
        {
            let xm = self.val(store, x);
            out.resize(xm.rows(), xm.cols());
            for (o, &v) in out.data_mut().iter_mut().zip(xm.data()) {
                *o = if v < 0.0 { 0.0 } else { v };
            }
        }
        self.put(i, Op::Relu { x }, out)
    }

    fn do_scale(&mut self, store: Option<&ParamStore>, x: VarId, s: f32) -> VarId {
        let (i, mut out) = self.claim();
        {
            let xm = self.val(store, x);
            out.resize(xm.rows(), xm.cols());
            for (o, &v) in out.data_mut().iter_mut().zip(xm.data()) {
                *o = v * s;
            }
        }
        self.put(i, Op::Scale { x, s }, out)
    }

    fn do_concat_cols(&mut self, store: Option<&ParamStore>, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat of zero parts");
        let start = self.parts.len();
        self.parts.extend_from_slice(parts);
        let range = start..self.parts.len();
        let (i, mut out) = self.claim();
        {
            let rows = self.val(store, parts[0]).rows();
            let total: usize = parts.iter().map(|&p| self.val(store, p).cols()).sum();
            out.resize(rows, total);
            let mut offset = 0;
            for &p in parts {
                let m = self.val(store, p);
                assert_eq!(m.rows(), rows, "concat row mismatch");
                let c = m.cols();
                for r in 0..rows {
                    out.data_mut()[r * total + offset..r * total + offset + c]
                        .copy_from_slice(m.row(r));
                }
                offset += c;
            }
        }
        self.put(i, Op::ConcatCols { parts: range }, out)
    }

    fn do_gather(&mut self, store: Option<&ParamStore>, table: VarId, idx: Arc<Vec<u32>>) -> VarId {
        let (i, mut out) = self.claim();
        {
            let t = self.val(store, table);
            out.resize(idx.len(), t.cols());
            for (r, &ix) in idx.iter().enumerate() {
                let ix = ix as usize;
                assert!(ix < t.rows(), "gather index {ix} out of range {}", t.rows());
                let c = t.cols();
                out.data_mut()[r * c..(r + 1) * c].copy_from_slice(t.row(ix));
            }
        }
        self.put(i, Op::Gather { table, idx }, out)
    }

    fn do_segment_sum(
        &mut self,
        store: Option<&ParamStore>,
        x: VarId,
        seg: Arc<Vec<u32>>,
        n_segments: usize,
    ) -> VarId {
        let (i, mut out) = self.claim();
        {
            let m = self.val(store, x);
            assert_eq!(m.rows(), seg.len(), "segment ids must cover all rows");
            let cols = m.cols();
            out.resize(n_segments, cols);
            out.fill_zero();
            for (r, &s) in seg.iter().enumerate() {
                let s = s as usize;
                assert!(s < n_segments, "segment id {s} out of range {n_segments}");
                let src = m.row(r);
                for (o, v) in out.data_mut()[s * cols..(s + 1) * cols].iter_mut().zip(src) {
                    *o += v;
                }
            }
        }
        self.put(i, Op::SegmentSum { x, seg, n_segments }, out)
    }

    // ---- legacy inherent API (parameter leaves are materialized) --------

    /// Records a non-trainable input leaf.
    pub fn input(&mut self, value: Matrix) -> VarId {
        self.do_input(&value)
    }

    /// Records a trainable parameter leaf with a *copy* of the store's
    /// current value (the original tape behaviour). The training engine
    /// avoids the copy by recording through [`Tape::ctx`] instead.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        let (i, mut out) = self.claim();
        out.copy_from(store.value(id));
        self.put(i, Op::Leaf { param: Some(id) }, out)
    }

    pub fn matmul(&mut self, x: VarId, w: VarId) -> VarId {
        self.do_matmul(None, x, w)
    }

    /// Masked matmul `x · (w ⊙ mask)`; the mask is applied on the fly so the
    /// stored parameter stays dense and the optimizer never sees the mask.
    pub fn masked_matmul(&mut self, x: VarId, w: VarId, mask: Arc<Matrix>) -> VarId {
        self.do_masked_matmul(None, x, w, mask)
    }

    pub fn add_row(&mut self, x: VarId, bias: VarId) -> VarId {
        self.do_add_row(None, x, bias)
    }

    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.do_add(None, a, b)
    }

    pub fn relu(&mut self, x: VarId) -> VarId {
        self.do_relu(None, x)
    }

    pub fn scale(&mut self, x: VarId, s: f32) -> VarId {
        self.do_scale(None, x, s)
    }

    /// Concatenates values column-wise. All parts must share the row count.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        self.do_concat_cols(None, parts)
    }

    /// Embedding lookup: row `i` of the output is row `idx[i]` of `table`.
    pub fn gather(&mut self, table: VarId, idx: Arc<Vec<u32>>) -> VarId {
        self.do_gather(None, table, idx)
    }

    /// Sum-pooling by segment: output row `s` is the sum of input rows `i`
    /// with `seg[i] == s`. Segments with no members stay zero — exactly the
    /// behaviour DeepSets needs for empty evidence sets.
    pub fn segment_sum(&mut self, x: VarId, seg: Arc<Vec<u32>>, n_segments: usize) -> VarId {
        self.do_segment_sum(None, x, seg, n_segments)
    }

    // ---- backward -------------------------------------------------------

    /// Claims the gradient slot of `v`, zero-initializing it to the given
    /// shape the first time a gradient reaches the node.
    fn take_grad(&mut self, v: VarId, rows: usize, cols: usize) -> Matrix {
        let mut g = std::mem::take(&mut self.grads[v.0]);
        if !self.has_grad[v.0] {
            g.resize(rows, cols);
            g.fill_zero();
            self.has_grad[v.0] = true;
        }
        g
    }

    fn put_grad(&mut self, v: VarId, g: Matrix) {
        self.grads[v.0] = g;
    }

    /// Runs reverse-mode differentiation seeding `root`'s gradient with
    /// `seed` (same shape as `root`'s value), then flushes parameter
    /// gradients into `store`'s resident gradient buffer.
    pub fn backward(&mut self, root: VarId, seed: Matrix, store: &mut ParamStore) {
        let mut grads = store.take_grads();
        self.backward_with(root, seed, store, &mut grads);
        store.put_grads(grads);
    }

    /// [`Tape::backward`] flushing into a caller-owned [`GradBuffer`] —
    /// the data-parallel training engine gives every microbatch its own
    /// buffer and reduces them in a fixed order afterwards. Parameter
    /// values are only *read* from `store`.
    pub fn backward_with(
        &mut self,
        root: VarId,
        seed: Matrix,
        store: &ParamStore,
        out: &mut GradBuffer,
    ) {
        assert_eq!(
            self.val_shape(Some(store), root),
            seed.shape(),
            "seed gradient shape mismatch"
        );
        {
            let (r, c) = seed.shape();
            let mut g = self.take_grad(root, r, c);
            g.add_assign(&seed);
            self.put_grad(root, g);
        }

        for i in (0..=root.0).rev() {
            if !self.has_grad[i] {
                continue;
            }
            let gi = std::mem::take(&mut self.grads[i]);
            match &self.ops[i] {
                Op::Leaf { param } => {
                    if let Some(pid) = *param {
                        out.accumulate(pid, &gi);
                    }
                }
                Op::MatMul { x, w } => {
                    let (x, w) = (*x, *w);
                    let (xr, xc) = self.val_shape(Some(store), x);
                    let mut gx = self.take_grad(x, xr, xc);
                    gi.matmul_t_acc(self.val(Some(store), w), &mut gx);
                    self.put_grad(x, gx);
                    let (wr, wc) = self.val_shape(Some(store), w);
                    let mut gw = self.take_grad(w, wr, wc);
                    self.val(Some(store), x).t_matmul_acc(&gi, &mut gw);
                    self.put_grad(w, gw);
                }
                Op::MaskedMatMul {
                    x, w, mask, masked, ..
                } => {
                    let (x, w, mi) = (*x, *w, *masked);
                    let mask = Arc::clone(mask);
                    let (xr, xc) = self.val_shape(Some(store), x);
                    let mut gx = self.take_grad(x, xr, xc);
                    gi.matmul_t_acc(&self.masked[mi], &mut gx);
                    self.put_grad(x, gx);
                    let (wr, wc) = self.val_shape(Some(store), w);
                    let mut gw = self.take_grad(w, wr, wc);
                    self.val(Some(store), x)
                        .t_matmul_masked_acc(&gi, &mask, &mut gw);
                    self.put_grad(w, gw);
                }
                Op::AddRow { x, bias } => {
                    let (x, bias) = (*x, *bias);
                    let (r, c) = gi.shape();
                    let mut gx = self.take_grad(x, r, c);
                    gx.add_assign(&gi);
                    self.put_grad(x, gx);
                    let mut gb = self.take_grad(bias, 1, c);
                    gi.col_sums_acc(&mut gb);
                    self.put_grad(bias, gb);
                }
                Op::Add { a, b } => {
                    let (a, b) = (*a, *b);
                    let (r, c) = gi.shape();
                    let mut ga = self.take_grad(a, r, c);
                    ga.add_assign(&gi);
                    self.put_grad(a, ga);
                    let mut gb = self.take_grad(b, r, c);
                    gb.add_assign(&gi);
                    self.put_grad(b, gb);
                }
                Op::Relu { x } => {
                    let x = *x;
                    let (r, c) = gi.shape();
                    let mut gx = self.take_grad(x, r, c);
                    {
                        let xv = self.val(Some(store), x);
                        for ((o, &g), &v) in gx.data_mut().iter_mut().zip(gi.data()).zip(xv.data())
                        {
                            if v > 0.0 {
                                *o += g;
                            }
                        }
                    }
                    self.put_grad(x, gx);
                }
                Op::ConcatCols { parts } => {
                    let parts = parts.clone();
                    let rows = gi.rows();
                    let mut offset = 0;
                    for k in parts {
                        let p = self.parts[k];
                        let (pr, pc) = self.val_shape(Some(store), p);
                        let mut gp = self.take_grad(p, pr, pc);
                        for r in 0..rows {
                            for (o, &g) in gp
                                .row_mut(r)
                                .iter_mut()
                                .zip(&gi.row(r)[offset..offset + pc])
                            {
                                *o += g;
                            }
                        }
                        self.put_grad(p, gp);
                        offset += pc;
                    }
                }
                Op::Gather { table, idx } => {
                    let (table, idx) = (*table, Arc::clone(idx));
                    let (tr, tc) = self.val_shape(Some(store), table);
                    let mut gt = self.take_grad(table, tr, tc);
                    for (r, &ix) in idx.iter().enumerate() {
                        let src = gi.row(r);
                        let dst = gt.row_mut(ix as usize);
                        for (d, g) in dst.iter_mut().zip(src) {
                            *d += g;
                        }
                    }
                    self.put_grad(table, gt);
                }
                Op::SegmentSum { x, seg, n_segments } => {
                    debug_assert_eq!(gi.rows(), *n_segments);
                    let (x, seg) = (*x, Arc::clone(seg));
                    let cols = gi.cols();
                    let mut gx = self.take_grad(x, seg.len(), cols);
                    for (r, &s) in seg.iter().enumerate() {
                        for (o, &g) in gx.row_mut(r).iter_mut().zip(gi.row(s as usize)) {
                            *o += g;
                        }
                    }
                    self.put_grad(x, gx);
                }
                Op::Scale { x, s } => {
                    let (x, s) = (*x, *s);
                    let (r, c) = gi.shape();
                    let mut gx = self.take_grad(x, r, c);
                    gx.add_scaled(&gi, s);
                    self.put_grad(x, gx);
                }
            }
            self.grads[i] = gi;
        }
    }
}

/// One recorded forward pass over a reusable [`Tape`] with parameters
/// resolved in place — the training-path mirror of
/// [`InferCtx`](crate::infer::InferCtx).
pub struct TapeCtx<'a> {
    tape: &'a mut Tape,
    store: &'a ParamStore,
}

impl Forward for TapeCtx<'_> {
    type Id = VarId;

    fn input(&mut self, value: &Matrix) -> VarId {
        self.tape.do_input(value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        debug_assert!(
            std::ptr::eq(store, self.store),
            "parameters must come from the context's store"
        );
        self.tape.do_param_ref(id)
    }

    fn matmul(&mut self, x: VarId, w: VarId) -> VarId {
        self.tape.do_matmul(Some(self.store), x, w)
    }

    fn masked_matmul(&mut self, x: VarId, w: VarId, mask: &Arc<Matrix>) -> VarId {
        self.tape
            .do_masked_matmul(Some(self.store), x, w, Arc::clone(mask))
    }

    fn add_row(&mut self, x: VarId, bias: VarId) -> VarId {
        self.tape.do_add_row(Some(self.store), x, bias)
    }

    fn add(&mut self, a: VarId, b: VarId) -> VarId {
        self.tape.do_add(Some(self.store), a, b)
    }

    fn relu(&mut self, x: VarId) -> VarId {
        self.tape.do_relu(Some(self.store), x)
    }

    fn scale(&mut self, x: VarId, s: f32) -> VarId {
        self.tape.do_scale(Some(self.store), x, s)
    }

    fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        self.tape.do_concat_cols(Some(self.store), parts)
    }

    fn gather(&mut self, table: VarId, idx: &Arc<Vec<u32>>) -> VarId {
        self.tape
            .do_gather(Some(self.store), table, Arc::clone(idx))
    }

    fn segment_sum(&mut self, x: VarId, seg: &Arc<Vec<u32>>, n_segments: usize) -> VarId {
        self.tape
            .do_segment_sum(Some(self.store), x, Arc::clone(seg), n_segments)
    }

    fn value(&self, id: VarId) -> &Matrix {
        self.tape.val(Some(self.store), id)
    }
}

/// The tape records ops instead of just evaluating them; layer definitions
/// written against [`Forward`] drive training through this impl (parameter
/// values copied into leaves — see [`Tape::ctx`] for the zero-copy path)
/// and inference through [`crate::infer::InferCtx`].
impl Forward for Tape {
    type Id = VarId;

    fn input(&mut self, value: &Matrix) -> VarId {
        self.do_input(value)
    }

    fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        Tape::param(self, store, id)
    }

    fn matmul(&mut self, x: VarId, w: VarId) -> VarId {
        Tape::matmul(self, x, w)
    }

    fn masked_matmul(&mut self, x: VarId, w: VarId, mask: &Arc<Matrix>) -> VarId {
        Tape::masked_matmul(self, x, w, Arc::clone(mask))
    }

    fn add_row(&mut self, x: VarId, bias: VarId) -> VarId {
        Tape::add_row(self, x, bias)
    }

    fn add(&mut self, a: VarId, b: VarId) -> VarId {
        Tape::add(self, a, b)
    }

    fn relu(&mut self, x: VarId) -> VarId {
        Tape::relu(self, x)
    }

    fn scale(&mut self, x: VarId, s: f32) -> VarId {
        Tape::scale(self, x, s)
    }

    fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        Tape::concat_cols(self, parts)
    }

    fn gather(&mut self, table: VarId, idx: &Arc<Vec<u32>>) -> VarId {
        Tape::gather(self, table, Arc::clone(idx))
    }

    fn segment_sum(&mut self, x: VarId, seg: &Arc<Vec<u32>>, n_segments: usize) -> VarId {
        Tape::segment_sum(self, x, Arc::clone(seg), n_segments)
    }

    fn value(&self, id: VarId) -> &Matrix {
        Tape::value(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_check<F>(param_shape: (usize, usize), mut f: F, seed: u64)
    where
        F: FnMut(&mut Tape, VarId) -> VarId,
    {
        // Scalar-output finite-difference gradient check for a single param.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let pid = store.register(Matrix::rand_uniform(
            param_shape.0,
            param_shape.1,
            -0.8,
            0.8,
            &mut rng,
        ));

        // Analytic gradient.
        let mut tape = Tape::new();
        let p = tape.param(&store, pid);
        let out = f(&mut tape, p);
        let (or, oc) = tape.value(out).shape();
        store.zero_grads();
        tape.backward(out, Matrix::filled(or, oc, 1.0), &mut store);
        let analytic = store.grad(pid).clone();

        // Numeric gradient of sum(out).
        let eps = 1e-3f32;
        for i in 0..param_shape.0 {
            for j in 0..param_shape.1 {
                let orig = store.value(pid).get(i, j);
                let eval = |store: &ParamStore, f: &mut F| -> f32 {
                    let mut t = Tape::new();
                    let p = t.param(store, pid);
                    let o = f(&mut t, p);
                    t.value(o).data().iter().sum()
                };
                store.value_mut(pid).set(i, j, orig + eps);
                let up = eval(&store, &mut f);
                store.value_mut(pid).set(i, j, orig - eps);
                let down = eval(&store, &mut f);
                store.value_mut(pid).set(i, j, orig);
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic.get(i, j);
                assert!(
                    (a - numeric).abs() < 1e-2 * (1.0 + a.abs().max(numeric.abs())),
                    "grad mismatch at ({i},{j}): analytic {a} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn matmul_backward_is_bit_identical_to_naive_kernels() {
        // The backward pass runs on the register-tiled accumulate kernels;
        // this pins the tape's gradients against the naive reference loops
        // bit-for-bit (shapes chosen to exercise tile remainders, zeros
        // from ReLU-like sparsity included).
        let mut rng = StdRng::seed_from_u64(77);
        let mut x = Matrix::rand_uniform(9, 6, -1.0, 1.0, &mut rng);
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                if (i + j) % 3 == 0 {
                    x.set(i, j, 0.0);
                }
            }
        }
        let w_val = Matrix::rand_uniform(6, 11, -1.0, 1.0, &mut rng);
        let seed_grad = Matrix::rand_uniform(9, 11, -1.0, 1.0, &mut rng);

        let mut store = ParamStore::new();
        let pid = store.register(w_val.clone());
        let mut tape = Tape::new();
        let xi = tape.input(x.clone());
        let w = tape.param(&store, pid);
        let out = tape.matmul(xi, w);
        store.zero_grads();
        tape.backward(out, seed_grad.clone(), &mut store);

        // dW = xᵀ · g, dx = g · wᵀ — via the naive reference kernels.
        let mut dw = Matrix::zeros(6, 11);
        x.t_matmul_acc_naive(&seed_grad, &mut dw);
        let mut dx = Matrix::zeros(9, 6);
        seed_grad.matmul_t_acc_naive(&w_val, &mut dx);

        for (a, b) in store.grad(pid).data().iter().zip(dw.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "dW diverged from naive");
        }
        let got_dx = tape.grad(xi).expect("input grad");
        for (a, b) in got_dx.data().iter().zip(dx.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "dx diverged from naive");
        }
    }

    #[test]
    fn matmul_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.25, -0.75]]);
        finite_diff_check(
            (3, 4),
            move |tape, p| {
                let xi = tape.input(x.clone());
                tape.matmul(xi, p)
            },
            10,
        );
    }

    #[test]
    fn masked_matmul_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.25, -0.75]]);
        let mask = Arc::new(Matrix::from_rows(&[
            &[1.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0],
        ]));
        finite_diff_check(
            (3, 4),
            move |tape, p| {
                let xi = tape.input(x.clone());
                tape.masked_matmul(xi, p, Arc::clone(&mask))
            },
            11,
        );
    }

    #[test]
    fn relu_chain_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.25]]);
        finite_diff_check(
            (2, 3),
            move |tape, p| {
                let xi = tape.input(x.clone());
                let h = tape.matmul(xi, p);
                tape.relu(h)
            },
            12,
        );
    }

    #[test]
    fn bias_gradient_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.5, -1.0, 0.25], &[1.5, 0.25, -2.0]]);
        finite_diff_check(
            (1, 3),
            move |tape, p| {
                let xi = tape.input(x.clone());
                tape.add_row(xi, p)
            },
            13,
        );
    }

    #[test]
    fn gather_gradient_accumulates_duplicates() {
        let mut store = ParamStore::new();
        let pid = store.register(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mut tape = Tape::new();
        let table = tape.param(&store, pid);
        let out = tape.gather(table, Arc::new(vec![0, 1, 0]));
        tape.backward(out, Matrix::filled(3, 2, 1.0), &mut store);
        // Row 0 gathered twice -> grad 2, row 1 once -> grad 1.
        assert_eq!(store.grad(pid).row(0), &[2.0, 2.0]);
        assert_eq!(store.grad(pid).row(1), &[1.0, 1.0]);
    }

    #[test]
    fn segment_sum_pools_and_backprops() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0], &[2.0], &[4.0]]));
        let out = tape.segment_sum(x, Arc::new(vec![1, 1, 0]), 3);
        assert_eq!(tape.value(out).row(0), &[4.0]);
        assert_eq!(tape.value(out).row(1), &[3.0]);
        assert_eq!(tape.value(out).row(2), &[0.0]); // empty segment
        let mut seed = Matrix::zeros(3, 1);
        seed.set(1, 0, 1.0);
        tape.backward(out, seed, &mut store);
        let gx = tape.grad(x).unwrap();
        assert_eq!(gx.data(), &[1.0, 1.0, 0.0]);
    }

    #[test]
    fn concat_splits_gradient() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let a = tape.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = tape.input(Matrix::from_rows(&[&[3.0]]));
        let out = tape.concat_cols(&[a, b]);
        assert_eq!(tape.value(out).row(0), &[1.0, 2.0, 3.0]);
        tape.backward(out, Matrix::from_rows(&[&[10.0, 20.0, 30.0]]), &mut store);
        assert_eq!(tape.grad(a).unwrap().row(0), &[10.0, 20.0]);
        assert_eq!(tape.grad(b).unwrap().row(0), &[30.0]);
    }

    #[test]
    fn residual_add_gradient_flows_both_ways() {
        let mut store = ParamStore::new();
        let pid = store.register(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let mut tape = Tape::new();
        let x = tape.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let w = tape.param(&store, pid);
        let h = tape.matmul(x, w);
        let out = tape.add(h, x);
        tape.backward(out, Matrix::filled(1, 2, 1.0), &mut store);
        // dx = dy·Wᵀ + dy = [1,1]·I + [1,1] = [2,2]
        assert_eq!(tape.grad(x).unwrap().row(0), &[2.0, 2.0]);
    }

    /// One chained pass through every op, used by the reuse tests below.
    fn chain_pass(
        tape: &mut Tape,
        store: &ParamStore,
        (w, b, table): (ParamId, ParamId, ParamId),
        mask: &Arc<Matrix>,
        idx: &Arc<Vec<u32>>,
        seg: &Arc<Vec<u32>>,
        zero_copy: bool,
    ) -> (VarId, Matrix) {
        fn chain<F: Forward>(
            f: &mut F,
            store: &ParamStore,
            (w, b, table): (ParamId, ParamId, ParamId),
            mask: &Arc<Matrix>,
            idx: &Arc<Vec<u32>>,
            seg: &Arc<Vec<u32>>,
        ) -> (F::Id, Matrix) {
            let t = f.param(store, table);
            let x = f.gather(t, idx);
            let wv = f.param(store, w);
            let bv = f.param(store, b);
            let h = f.masked_matmul(x, wv, mask);
            let h = f.add_row(h, bv);
            let h = f.relu(h);
            let h2 = f.scale(h, 0.5);
            let h = f.add(h, h2);
            let cat = f.concat_cols(&[h, h]);
            let pooled = f.segment_sum(cat, seg, 2);
            let v = f.value(pooled).clone();
            (pooled, v)
        }
        if zero_copy {
            let mut f = tape.ctx(store);
            chain(&mut f, store, (w, b, table), mask, idx, seg)
        } else {
            tape.reset();
            chain(tape, store, (w, b, table), mask, idx, seg)
        }
    }

    /// Tape reuse across resets — and the zero-copy parameter path — must
    /// reproduce the fresh-tape pass bit for bit, values and gradients,
    /// while the node arena stops growing after the first pass.
    #[test]
    fn reused_and_zero_copy_passes_match_fresh_tapes_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut store = ParamStore::new();
        let w = store.register(Matrix::rand_uniform(3, 4, -1.0, 1.0, &mut rng));
        let b = store.register(Matrix::rand_uniform(1, 4, -0.5, 0.5, &mut rng));
        let table = store.register(Matrix::rand_uniform(6, 3, -1.0, 1.0, &mut rng));
        let ids = (w, b, table);
        let mask = Arc::new(Matrix::from_rows(&[
            &[1.0, 0.0, 1.0, 1.0],
            &[0.0, 1.0, 1.0, 0.0],
            &[1.0, 1.0, 0.0, 1.0],
        ]));
        // Ragged shapes across passes: the arena must not leak state.
        type IdxSeg = (Arc<Vec<u32>>, Arc<Vec<u32>>);
        let shapes: Vec<IdxSeg> = vec![
            (Arc::new(vec![0u32, 3, 5, 1]), Arc::new(vec![1u32, 0, 1, 1])),
            (Arc::new(vec![2u32, 2]), Arc::new(vec![0u32, 0])),
            (Arc::new(vec![0u32, 3, 5, 1]), Arc::new(vec![1u32, 0, 1, 1])),
        ];

        let mut reused = Tape::new();
        let mut capacity_after_first = 0;
        for (pass, (idx, seg)) in shapes.iter().enumerate() {
            // Reference: fresh tape, materialized params.
            let mut fresh = Tape::new();
            let (root_f, val_f) = chain_pass(&mut fresh, &store, ids, &mask, idx, seg, false);
            let (fr, fc) = val_f.shape();
            let mut gf = GradBuffer::new(&store);
            fresh.backward_with(root_f, Matrix::filled(fr, fc, 1.0), &store, &mut gf);

            for zero_copy in [false, true] {
                let (root, val) = chain_pass(&mut reused, &store, ids, &mask, idx, seg, zero_copy);
                assert_eq!(val, val_f, "pass {pass} value diverged (zc={zero_copy})");
                let mut g = GradBuffer::new(&store);
                reused.backward_with(root, Matrix::filled(fr, fc, 1.0), &store, &mut g);
                for pid in [w, b, table] {
                    assert_eq!(
                        g.grad(pid),
                        gf.grad(pid),
                        "pass {pass} grad of {pid} diverged (zc={zero_copy})"
                    );
                }
            }
            if pass == 0 {
                capacity_after_first = reused.node_capacity();
            } else {
                assert_eq!(
                    reused.node_capacity(),
                    capacity_after_first,
                    "arena grew after warm-up"
                );
            }
        }
    }
}
