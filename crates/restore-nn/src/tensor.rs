//! Dense row-major `f32` matrices — the only tensor shape the ReStore models
//! need. Kept deliberately small: 2-D, contiguous, no views.

use rand::Rng;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer does not match {rows}x{cols}"
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested slices (handy in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Uniform random matrix in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
        Self { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initialization for a `fan_in × fan_out`
    /// weight: `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// Replaces the seed's fan-in-only bound (`sqrt(6 / fan_in)`, ReLU-gain
    /// Kaiming), which was too hot for the layers that do *not* feed a
    /// ReLU — MADE's logit output layer and the DeepSets context head —
    /// so the symmetric fan-in + fan-out bound is used for every layer.
    pub fn glorot<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        Self::rand_uniform(fan_in, fan_out, -bound, bound, rng)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` — standard matrix multiply.
    ///
    /// Uses the cache-friendly i-k-j loop order; plenty fast for the model
    /// sizes ReStore trains (hundreds of rows × a few hundred columns).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a preallocated output (resized and
    /// overwritten) — the no-grad inference path reuses activations this
    /// way instead of allocating per op.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch {:?}·{:?}",
            self.shape(),
            other.shape()
        );
        out.resize(self.rows, other.cols);
        gemm_tiled(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// `self · (w ⊙ mask)` without materializing the masked weight, written
    /// into a preallocated output. Bit-identical to
    /// `self.matmul(&w.hadamard(mask))`: the per-element product order
    /// `a * (w * m)` matches hadamard-then-matmul exactly.
    pub fn masked_matmul_into(&self, w: &Matrix, mask: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            w.rows,
            "matmul shape mismatch {:?}·{:?}",
            self.shape(),
            w.shape()
        );
        assert_eq!(w.shape(), mask.shape(), "mask shape mismatch");
        out.resize(self.rows, w.cols);
        out.fill_zero();
        let n = w.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let w_row = w.row(k);
                let m_row = mask.row(k);
                for j in 0..n {
                    out_row[j] += a * (w_row[j] * m_row[j]);
                }
            }
        }
    }

    /// Computes only columns `cols` of `self · other` into `out` (shaped
    /// `self.rows × cols.len()`) with the tiled kernel's zero-initialized
    /// ascending-`k` accumulation — the exact per-element add sequence of
    /// [`Matrix::matmul_into`], so every value is bit-identical to the
    /// corresponding entry of the full product. This is the band-restricted
    /// GEMM of the incremental AR sweep: each degree band of hidden units
    /// is a contiguous column range of the degree-sorted masked weight.
    pub fn matmul_col_band_into(
        &self,
        other: &Matrix,
        cols: std::ops::Range<usize>,
        out: &mut Matrix,
    ) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert!(cols.end <= other.cols, "column range out of bounds");
        let width = cols.len();
        out.resize(self.rows, width);
        gemm_tiled_cols(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
            cols.start,
            width,
        );
    }

    /// Computes only columns `cols` of `self · other` into `out` (shaped
    /// `self.rows × cols.len()`). Per element this is the tiled kernel's
    /// zero-initialized ascending-`k` dot product — exactly the sequence
    /// [`Matrix::matmul_into`] runs — so the values are bit-identical to
    /// the corresponding slice of the full product. The batched sampler
    /// uses this to evaluate just the logit block of the attribute being
    /// sampled.
    pub fn matmul_cols_into(&self, other: &Matrix, cols: std::ops::Range<usize>, out: &mut Matrix) {
        self.matmul_col_band_into(other, cols, out)
    }

    /// `out += self · otherᵀ` — the gradient-accumulation form of
    /// [`Matrix::matmul_t`], writing into a caller-owned accumulator so the
    /// backward pass allocates nothing.
    ///
    /// Register-tiled like the forward GEMM: an MR×NR accumulator block
    /// lives in registers across the whole k loop. Per `(i, j)` the dot
    /// product still accumulates from zero in ascending `k` and lands in
    /// `out[i][j]` with one final add — the exact floating-point sequence
    /// of [`Matrix::matmul_t_acc_naive`], so the results are bit-identical
    /// (pinned by the kernel and tape equality tests).
    pub fn matmul_t_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "accumulator shape mismatch"
        );
        const MR: usize = 4;
        const NR: usize = 4;
        let (rows, kk, n) = (self.rows, self.cols, other.rows);
        let mut i = 0;
        while i + MR <= rows {
            let mut j0 = 0;
            while j0 + NR <= n {
                let mut acc = [[0f32; NR]; MR];
                for k in 0..kk {
                    let mut a_tile = [0f32; MR];
                    for (r, a) in a_tile.iter_mut().enumerate() {
                        *a = self.data[(i + r) * kk + k];
                    }
                    let mut b_tile = [0f32; NR];
                    for (j, b) in b_tile.iter_mut().enumerate() {
                        *b = other.data[(j0 + j) * kk + k];
                    }
                    for (r, acc_row) in acc.iter_mut().enumerate() {
                        for j in 0..NR {
                            acc_row[j] += a_tile[r] * b_tile[j];
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let out_row = &mut out.data[(i + r) * n + j0..(i + r) * n + j0 + NR];
                    for (o, &a) in out_row.iter_mut().zip(acc_row) {
                        *o += a;
                    }
                }
                j0 += NR;
            }
            // Remainder columns of this row block: naive per (i, j).
            for r in i..i + MR {
                let a_row = self.row(r);
                for j in j0..n {
                    let b_row = other.row(j);
                    let mut acc = 0.0;
                    for k in 0..kk {
                        acc += a_row[k] * b_row[k];
                    }
                    out.data[r * n + j] += acc;
                }
            }
            i += MR;
        }
        // Remainder rows: naive.
        for i in i..rows {
            let a_row = self.row(i);
            for j in 0..n {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for k in 0..kk {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * n + j] += acc;
            }
        }
    }

    /// Reference (naive i-j-k loop) form of [`Matrix::matmul_t_acc`] — the
    /// bit-equality contract of the tiled kernel is defined against this.
    pub fn matmul_t_acc_naive(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "accumulator shape mismatch"
        );
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * other.rows + j] += acc;
            }
        }
    }

    /// `out += selfᵀ · other` — accumulation form of [`Matrix::t_matmul`].
    ///
    /// Register-tiled: an MR×NR block of `out` is loaded into registers,
    /// accumulated across the whole contraction (row) loop, and stored
    /// once — instead of streaming `out` through memory once per row. Per
    /// element the adds happen in ascending row order with the same
    /// `a == 0` skip as [`Matrix::t_matmul_acc_naive`], so results are
    /// bit-identical to the naive loop (zero activations are common — ReLU
    /// outputs, one-hot embeddings — and the skip also sidesteps
    /// `0 · b` edge cases for non-finite `b`).
    pub fn t_matmul_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "accumulator shape mismatch"
        );
        const MR: usize = 4;
        const NR: usize = 8;
        let (rows, m, n) = (self.rows, self.cols, other.cols);
        let mut i = 0;
        while i + MR <= m {
            let mut j0 = 0;
            while j0 + NR <= n {
                // out tile → registers.
                let mut acc = [[0f32; NR]; MR];
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let out_row = &out.data[(i + r) * n + j0..(i + r) * n + j0 + NR];
                    acc_row.copy_from_slice(out_row);
                }
                for r in 0..rows {
                    let a_tile = &self.data[r * m + i..r * m + i + MR];
                    let b_tile = &other.data[r * n + j0..r * n + j0 + NR];
                    for (acc_row, &a) in acc.iter_mut().zip(a_tile) {
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &b) in acc_row.iter_mut().zip(b_tile) {
                            *o += a * b;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    out.data[(i + r) * n + j0..(i + r) * n + j0 + NR].copy_from_slice(acc_row);
                }
                j0 += NR;
            }
            if j0 < n {
                // Remainder columns of this row block, same tile walk.
                for r in 0..rows {
                    let a_tile = &self.data[r * m + i..r * m + i + MR];
                    let b_row = other.row(r);
                    for (ri, &a) in a_tile.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let out_row = &mut out.data[(i + ri) * n + j0..(i + ri) * n + n];
                        for (o, &b) in out_row.iter_mut().zip(&b_row[j0..]) {
                            *o += a * b;
                        }
                    }
                }
            }
            i += MR;
        }
        // Remainder rows of `out` (columns of `self`): naive.
        for r in 0..rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (ri, &a) in a_row.iter().enumerate().skip(i) {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[ri * n..(ri + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Reference (naive row-outer loop) form of [`Matrix::t_matmul_acc`] —
    /// the bit-equality contract of the tiled kernel is defined against
    /// this.
    pub fn t_matmul_acc_naive(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "accumulator shape mismatch"
        );
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
    }

    /// `out += (selfᵀ · other) ⊙ mask` — the masked-linear weight gradient.
    /// Each term is gated by the mask entry as it is accumulated; for the
    /// binary masks MADE uses this equals masking the finished product.
    pub fn t_matmul_masked_acc(&self, other: &Matrix, mask: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "accumulator shape mismatch"
        );
        assert_eq!(mask.shape(), out.shape(), "mask shape mismatch");
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                let m_row = mask.row(i);
                for j in 0..n {
                    out_row[j] += a * b_row[j] * m_row[j];
                }
            }
        }
    }

    /// `out += column sums of self` (`out` is `1 × cols`) — the bias
    /// gradient, in accumulation form.
    pub fn col_sums_acc(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (1, self.cols), "accumulator shape mismatch");
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Element-wise product (Hadamard), returning a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales all entries in place.
    pub fn scale_assign(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of each column as a `1 × cols` matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fills with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes in place to `rows × cols`, keeping the allocation when the
    /// new size fits. Newly exposed elements are zero; retained elements
    /// keep whatever they held (callers overwrite).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Becomes an element-wise copy of `other`, reusing the allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }
}

/// Register-tiled GEMM microkernel over raw row-major slices: MR×NR
/// accumulators live in registers across the whole k loop, so each weight
/// row is streamed once per row-block instead of once per row. For every
/// `(i, j)` the contributions accumulate in ascending `k`, so the result
/// is bit-identical to the naive zero-initialized i-k-j loop (zero
/// activations contribute exact zeros; skipping them is not worth the
/// branch). Free function over plain slices so LLVM gets clean noalias
/// information for the output.
fn gemm_tiled(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, kk: usize, n: usize) {
    gemm_tiled_cols(a, b, out, rows, kk, n, 0, n)
}

/// Column-band generalization of [`gemm_tiled`]: computes only columns
/// `c0..c0 + w` of `a · b` (where `b` is `kk × bn` row-major) into `out`
/// (`rows × w`, row-major). Per `(i, j)` the dot product still accumulates
/// from zero in ascending `k`, so each computed value is bit-identical to
/// the corresponding entry of the full product — the incremental AR sweep
/// relies on this to recompute one degree band per step.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled_cols(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: usize,
    kk: usize,
    bn: usize,
    c0: usize,
    w: usize,
) {
    const MR: usize = 4;
    let mut i = 0;
    while i + MR <= rows {
        // Hierarchical fixed-width column tiles: narrow outputs (the degree
        // bands of the incremental sweep are ~width/n_attrs columns) keep
        // their accumulators in registers instead of falling into a
        // variable-length remainder loop. Tile width only groups columns —
        // each `(i, j)` is still an independent zero-init ascending-k dot
        // product, so the result does not depend on the tiling.
        let mut j0 = 0;
        while j0 + 32 <= w {
            mul_tile::<32>(a, b, out, i, kk, bn, c0, w, j0);
            j0 += 32;
        }
        while j0 + 8 <= w {
            mul_tile::<8>(a, b, out, i, kk, bn, c0, w, j0);
            j0 += 8;
        }
        while j0 + 4 <= w {
            mul_tile::<4>(a, b, out, i, kk, bn, c0, w, j0);
            j0 += 4;
        }
        while j0 + 2 <= w {
            mul_tile::<2>(a, b, out, i, kk, bn, c0, w, j0);
            j0 += 2;
        }
        while j0 < w {
            mul_tile::<1>(a, b, out, i, kk, bn, c0, w, j0);
            j0 += 1;
        }
        i += MR;
    }
    for i in i..rows {
        let a_row = &a[i * kk..(i + 1) * kk];
        let out_row = &mut out[i * w..(i + 1) * w];
        out_row.fill(0.0);
        for (k, &av) in a_row.iter().enumerate() {
            let b_row = &b[k * bn + c0..k * bn + c0 + w];
            for j in 0..w {
                out_row[j] += av * b_row[j];
            }
        }
    }
}

/// One `4 × NR` register tile of [`gemm_tiled_cols`]: columns
/// `j0..j0 + NR` (offset by `c0` inside `b`) for rows `i..i + 4`,
/// accumulated from zero in ascending `k`. Monomorphized per tile width so
/// the accumulator array stays in registers.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn mul_tile<const NR: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    kk: usize,
    bn: usize,
    c0: usize,
    w: usize,
    j0: usize,
) {
    const MR: usize = 4;
    let mut acc = [[0f32; NR]; MR];
    for k in 0..kk {
        let b_tile = &b[k * bn + c0 + j0..k * bn + c0 + j0 + NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = a[(i + r) * kk + k];
            for (o, &bv) in acc_row.iter_mut().zip(b_tile) {
                *o += av * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        out[(i + r) * w + j0..(i + r) * w + j0 + NR].copy_from_slice(acc_row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(4, 5, -1.0, 1.0, &mut rng);
        // explicit aᵀ
        let mut at = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                at.set(j, i, a.get(i, j));
            }
        }
        let expect = at.matmul(&b);
        let got = a.t_matmul(&b);
        for (x, y) in expect.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(5, 3, -1.0, 1.0, &mut rng);
        let mut bt = Matrix::zeros(3, 5);
        for i in 0..5 {
            for j in 0..3 {
                bt.set(j, i, b.get(i, j));
            }
        }
        let expect = a.matmul(&bt);
        let got = a.matmul_t(&b);
        for (x, y) in expect.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn acc_kernels_match_allocating_forms() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::rand_uniform(5, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(5, 4, -1.0, 1.0, &mut rng);
        let g = Matrix::rand_uniform(5, 4, -1.0, 1.0, &mut rng);

        let mut acc = Matrix::zeros(3, 4);
        a.t_matmul_acc(&b, &mut acc);
        assert_eq!(acc, a.t_matmul(&b));
        // Accumulates rather than overwrites (per-term, so only
        // approximately equal to product-then-add).
        a.t_matmul_acc(&b, &mut acc);
        let mut twice = a.t_matmul(&b);
        twice.add_assign(&a.t_matmul(&b));
        for (x, y) in acc.data().iter().zip(twice.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let mut acc = Matrix::zeros(5, 5);
        g.matmul_t_acc(&b, &mut acc);
        assert_eq!(acc, g.matmul_t(&b));

        let mut mask = Matrix::zeros(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                mask.set(r, c, ((r + c) % 2) as f32);
            }
        }
        let mut acc = Matrix::zeros(3, 4);
        a.t_matmul_masked_acc(&b, &mask, &mut acc);
        assert_eq!(acc, a.t_matmul(&b).hadamard(&mask));

        let mut acc = Matrix::zeros(1, 4);
        b.col_sums_acc(&mut acc);
        assert_eq!(acc, b.col_sums());
    }

    /// Random matrix with planted exact zeros and negative zeros, so the
    /// tiled kernels hit the `a == 0` skip and signed-zero accumulation
    /// paths the bit-equality contract has to preserve.
    fn tricky(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let mut m = Matrix::rand_uniform(rows, cols, -1.0, 1.0, rng);
        for i in 0..rows {
            for j in 0..cols {
                match (i * cols + j) % 7 {
                    0 => m.set(i, j, 0.0),
                    3 => m.set(i, j, -0.0),
                    _ => {}
                }
            }
        }
        m
    }

    #[test]
    fn tiled_acc_kernels_are_bit_identical_to_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes straddling the tile sizes: exact multiples, remainders in
        // both dimensions, and degenerate single rows/cols.
        let shapes = [
            (8usize, 8usize, 8usize),
            (9, 5, 11),
            (4, 32, 4),
            (1, 3, 1),
            (13, 1, 17),
            (6, 64, 33),
        ];
        for &(m, k, n) in &shapes {
            // matmul_t_acc: (m × k) · (n × k)ᵀ += (m × n)
            let a = tricky(m, k, &mut rng);
            let b = tricky(n, k, &mut rng);
            let init = tricky(m, n, &mut rng);
            let mut tiled = init.clone();
            let mut naive = init.clone();
            a.matmul_t_acc(&b, &mut tiled);
            a.matmul_t_acc_naive(&b, &mut naive);
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul_t_acc {m}x{k}x{n}");
            }

            // t_matmul_acc: (k × m)ᵀ · (k × n) += (m × n)
            let a = tricky(k, m, &mut rng);
            let b = tricky(k, n, &mut rng);
            let init = tricky(m, n, &mut rng);
            let mut tiled = init.clone();
            let mut naive = init.clone();
            a.t_matmul_acc(&b, &mut tiled);
            a.t_matmul_acc_naive(&b, &mut naive);
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "t_matmul_acc {k}x{m}x{n}");
            }
        }
    }

    #[test]
    fn col_band_matmul_is_bit_identical_to_full_product() {
        // Every column band of the product — tile-aligned, straddling, and
        // degenerate single columns — must match the full GEMM bit for bit,
        // including planted exact/negative zeros in both operands.
        let mut rng = StdRng::seed_from_u64(13);
        for &(m, k, n) in &[
            (9usize, 5usize, 70usize),
            (4, 32, 33),
            (1, 3, 5),
            (6, 1, 64),
        ] {
            let a = tricky(m, k, &mut rng);
            let b = tricky(k, n, &mut rng);
            let full = a.matmul(&b);
            let bands = [
                0..n,
                0..1.min(n),
                n / 3..(2 * n / 3).max(n / 3 + 1),
                n - 1..n,
            ];
            for band in bands {
                let mut out = Matrix::zeros(0, 0);
                a.matmul_col_band_into(&b, band.clone(), &mut out);
                assert_eq!(out.shape(), (m, band.len()));
                for i in 0..m {
                    for (jj, j) in band.clone().enumerate() {
                        assert_eq!(
                            out.get(i, jj).to_bits(),
                            full.get(i, j).to_bits(),
                            "band {band:?} ({m}x{k}x{n}) diverged at ({i}, {j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_acc_kernels_accumulate_repeatedly() {
        // Repeated accumulation into the same buffer (how the backward
        // pass uses these) must also track the naive sequence bit-for-bit.
        let mut rng = StdRng::seed_from_u64(12);
        let a = tricky(7, 10, &mut rng);
        let b = tricky(5, 10, &mut rng);
        let mut tiled = Matrix::zeros(7, 5);
        let mut naive = Matrix::zeros(7, 5);
        for _ in 0..3 {
            a.matmul_t_acc(&b, &mut tiled);
            a.matmul_t_acc_naive(&b, &mut naive);
        }
        assert_eq!(tiled, naive);

        let a = tricky(10, 7, &mut rng);
        let b = tricky(10, 5, &mut rng);
        let mut tiled = Matrix::zeros(7, 5);
        let mut naive = Matrix::zeros(7, 5);
        for _ in 0..3 {
            a.t_matmul_acc(&b, &mut tiled);
            a.t_matmul_acc_naive(&b, &mut naive);
        }
        assert_eq!(tiled, naive);
    }

    #[test]
    fn col_sums_sums_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.col_sums(), Matrix::from_rows(&[&[9.0, 12.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn glorot_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::glorot(64, 32, &mut rng);
        let bound = (6.0f32 / (64.0 + 32.0)).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn glorot_pins_init_distribution() {
        // Pin the init contract: bound = sqrt(6 / (fan_in + fan_out)), the
        // samples fill that support (not a tighter one), and the mean is
        // near zero. Guards against silent regressions to fan-in-only.
        let (fan_in, fan_out) = (100usize, 50usize);
        let bound = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(4);
        let w = Matrix::glorot(fan_in, fan_out, &mut rng);
        let max_abs = w.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_abs <= bound, "sample {max_abs} exceeds bound {bound}");
        assert!(max_abs > 0.95 * bound, "samples do not fill the support");
        let mean: f32 = w.data().iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.05 * bound, "mean {mean} too far from zero");
        // Uniform variance b²/3 within 10%.
        let var: f32 = w.data().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        let expect = bound * bound / 3.0;
        assert!(
            (var - expect).abs() < 0.1 * expect,
            "variance {var} vs {expect}"
        );
    }
}
