//! Dense row-major `f32` matrices — the only tensor shape the ReStore models
//! need. Kept deliberately small: 2-D, contiguous, no views.

use rand::Rng;

/// Build-time SIMD lane-width selection for the wide `f32` kernels.
///
/// The tiled GEMM kernels below keep fixed-width `[f32; N]` accumulator
/// blocks that the autovectorizer maps onto whole vector registers; `N`
/// (one or two lanes' worth of `f32`s) is picked **at build time** from
/// the target features the compiler is allowed to use, with a scalar
/// fallback of 1 for targets without packed `f32` math. No `unsafe`, no
/// intrinsics, no runtime dispatch: the selection only shapes the tiles,
/// and every tile accumulates each output element from zero in ascending
/// `k`, so the kernels stay bit-identical to their naive references on
/// every target (the lane width changes *speed*, never *values*).
pub mod lane {
    /// `f32` lanes in the widest vector register the build may use.
    #[cfg(target_feature = "avx512f")]
    pub const WIDTH: usize = 16;
    /// `f32` lanes in the widest vector register the build may use.
    #[cfg(all(not(target_feature = "avx512f"), target_feature = "avx"))]
    pub const WIDTH: usize = 8;
    /// `f32` lanes in the widest vector register the build may use.
    #[cfg(all(
        not(target_feature = "avx512f"),
        not(target_feature = "avx"),
        any(target_feature = "sse2", target_feature = "neon")
    ))]
    pub const WIDTH: usize = 4;
    /// `f32` lanes in the widest vector register the build may use.
    #[cfg(not(any(
        target_feature = "avx512f",
        target_feature = "avx",
        target_feature = "sse2",
        target_feature = "neon"
    )))]
    pub const WIDTH: usize = 1;

    /// The target feature [`WIDTH`] was derived from (bench-record label).
    #[cfg(target_feature = "avx512f")]
    pub const TARGET_FEATURE: &str = "avx512f";
    /// The target feature [`WIDTH`] was derived from (bench-record label).
    #[cfg(all(not(target_feature = "avx512f"), target_feature = "avx"))]
    pub const TARGET_FEATURE: &str = "avx";
    /// The target feature [`WIDTH`] was derived from (bench-record label).
    #[cfg(all(
        not(target_feature = "avx512f"),
        not(target_feature = "avx"),
        target_feature = "sse2"
    ))]
    pub const TARGET_FEATURE: &str = "sse2";
    /// The target feature [`WIDTH`] was derived from (bench-record label).
    #[cfg(all(
        not(target_feature = "avx512f"),
        not(target_feature = "avx"),
        not(target_feature = "sse2"),
        target_feature = "neon"
    ))]
    pub const TARGET_FEATURE: &str = "neon";
    /// The target feature [`WIDTH`] was derived from (bench-record label).
    #[cfg(not(any(
        target_feature = "avx512f",
        target_feature = "avx",
        target_feature = "sse2",
        target_feature = "neon"
    )))]
    pub const TARGET_FEATURE: &str = "scalar";
}

/// A dense row-major matrix of `f32` values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer does not match {rows}x{cols}"
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested slices (handy in tests).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Uniform random matrix in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
        Self { rows, cols, data }
    }

    /// Glorot/Xavier-uniform initialization for a `fan_in × fan_out`
    /// weight: `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// Replaces the seed's fan-in-only bound (`sqrt(6 / fan_in)`, ReLU-gain
    /// Kaiming), which was too hot for the layers that do *not* feed a
    /// ReLU — MADE's logit output layer and the DeepSets context head —
    /// so the symmetric fan-in + fan-out bound is used for every layer.
    pub fn glorot<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
        Self::rand_uniform(fan_in, fan_out, -bound, bound, rng)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` — standard matrix multiply.
    ///
    /// Uses the cache-friendly i-k-j loop order; plenty fast for the model
    /// sizes ReStore trains (hundreds of rows × a few hundred columns).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a preallocated output (resized and
    /// overwritten) — the no-grad inference path reuses activations this
    /// way instead of allocating per op.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch {:?}·{:?}",
            self.shape(),
            other.shape()
        );
        out.resize(self.rows, other.cols);
        gemm_tiled(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// Reference (naive i-k-j loop) form of [`Matrix::matmul_into`] — the
    /// bit-equality oracle of the lane-tiled forward GEMM: per `(i, j)` the
    /// output accumulates from zero in ascending `k`, the exact sequence
    /// the tiled kernel runs.
    pub fn matmul_into_naive(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch {:?}·{:?}",
            self.shape(),
            other.shape()
        );
        out.resize(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            out_row.fill(0.0);
            for (k, &av) in a_row.iter().enumerate() {
                let b_row = other.row(k);
                for j in 0..n {
                    out_row[j] += av * b_row[j];
                }
            }
        }
    }

    /// `self · (w ⊙ mask)` without materializing the masked weight, written
    /// into a preallocated output. Bit-identical to
    /// `self.matmul(&w.hadamard(mask))`: the per-element product order
    /// `a * (w * m)` matches hadamard-then-matmul exactly.
    pub fn masked_matmul_into(&self, w: &Matrix, mask: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            w.rows,
            "matmul shape mismatch {:?}·{:?}",
            self.shape(),
            w.shape()
        );
        assert_eq!(w.shape(), mask.shape(), "mask shape mismatch");
        out.resize(self.rows, w.cols);
        out.fill_zero();
        let n = w.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let w_row = w.row(k);
                let m_row = mask.row(k);
                for j in 0..n {
                    out_row[j] += a * (w_row[j] * m_row[j]);
                }
            }
        }
    }

    /// Computes only columns `cols` of `self · other` into `out` (shaped
    /// `self.rows × cols.len()`) with the tiled kernel's zero-initialized
    /// ascending-`k` accumulation — the exact per-element add sequence of
    /// [`Matrix::matmul_into`], so every value is bit-identical to the
    /// corresponding entry of the full product. This is the band-restricted
    /// GEMM of the incremental AR sweep: each degree band of hidden units
    /// is a contiguous column range of the degree-sorted masked weight.
    pub fn matmul_col_band_into(
        &self,
        other: &Matrix,
        cols: std::ops::Range<usize>,
        out: &mut Matrix,
    ) {
        self.matmul_col_band_limited_into(other, cols, self.cols, out)
    }

    /// [`Matrix::matmul_col_band_into`] contracting only `k < k_limit`
    /// instead of the full inner dimension. The caller guarantees every
    /// skipped `other` row is zero over `cols`; each skipped naive-loop
    /// term is then an exact `a · 0.0 = ±0.0` whose addition cannot change
    /// any accumulator bit (the accumulators start at `+0.0` and
    /// `x + ±0.0` preserves `x`'s bits for every finite `x`), so results
    /// stay bit-identical to the full-`k` product for finite activations.
    /// The AR sweep uses this to skip input rows a band's mask zeroes out
    /// — e.g. a degree-`d` first-layer band never reads the embedding
    /// blocks of attributes `≥ d`.
    pub fn matmul_col_band_limited_into(
        &self,
        other: &Matrix,
        cols: std::ops::Range<usize>,
        k_limit: usize,
        out: &mut Matrix,
    ) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert!(cols.end <= other.cols, "column range out of bounds");
        assert!(k_limit <= self.cols, "k_limit out of bounds");
        let width = cols.len();
        out.resize(self.rows, width);
        gemm_tiled_cols(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            k_limit,
            other.cols,
            cols.start,
            width,
        );
    }

    /// Reference (naive loop) form of [`Matrix::matmul_col_band_into`] —
    /// the bit-equality oracle of the lane-tiled band GEMM.
    pub fn matmul_col_band_into_naive(
        &self,
        other: &Matrix,
        cols: std::ops::Range<usize>,
        out: &mut Matrix,
    ) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert!(cols.end <= other.cols, "column range out of bounds");
        let (c0, w) = (cols.start, cols.len());
        out.resize(self.rows, w);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * w..(i + 1) * w];
            out_row.fill(0.0);
            for (k, &av) in a_row.iter().enumerate() {
                let b_row = &other.row(k)[c0..c0 + w];
                for j in 0..w {
                    out_row[j] += av * b_row[j];
                }
            }
        }
    }

    /// Computes only columns `cols` of `self · other` into `out` (shaped
    /// `self.rows × cols.len()`). Per element this is the tiled kernel's
    /// zero-initialized ascending-`k` dot product — exactly the sequence
    /// [`Matrix::matmul_into`] runs — so the values are bit-identical to
    /// the corresponding slice of the full product. The batched sampler
    /// uses this to evaluate just the logit block of the attribute being
    /// sampled.
    pub fn matmul_cols_into(&self, other: &Matrix, cols: std::ops::Range<usize>, out: &mut Matrix) {
        self.matmul_col_band_into(other, cols, out)
    }

    /// `out += self · otherᵀ` — the gradient-accumulation form of
    /// [`Matrix::matmul_t`], writing into a caller-owned accumulator so the
    /// backward pass allocates nothing.
    ///
    /// Register-tiled like the forward GEMM: an MR×NR accumulator block
    /// lives in registers across the whole k loop. Per `(i, j)` the dot
    /// product still accumulates from zero in ascending `k` and lands in
    /// `out[i][j]` with one final add — the exact floating-point sequence
    /// of [`Matrix::matmul_t_acc_naive`], so the results are bit-identical
    /// (pinned by the kernel and tape equality tests).
    pub fn matmul_t_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "accumulator shape mismatch"
        );
        const MR: usize = 4;
        // Lane-derived tile width: the NR `j` lanes are independent
        // ascending-k dot products, so widening the tile only amortizes the
        // strided `b` gathers and the `a` loads — values are unchanged.
        const NR: usize = if lane::WIDTH > 4 { lane::WIDTH } else { 4 };
        let (rows, kk, n) = (self.rows, self.cols, other.rows);
        let mut i = 0;
        while i + MR <= rows {
            let mut j0 = 0;
            while j0 + NR <= n {
                let mut acc = [[0f32; NR]; MR];
                for k in 0..kk {
                    let mut a_tile = [0f32; MR];
                    for (r, a) in a_tile.iter_mut().enumerate() {
                        *a = self.data[(i + r) * kk + k];
                    }
                    let mut b_tile = [0f32; NR];
                    for (j, b) in b_tile.iter_mut().enumerate() {
                        *b = other.data[(j0 + j) * kk + k];
                    }
                    for (r, acc_row) in acc.iter_mut().enumerate() {
                        for j in 0..NR {
                            acc_row[j] += a_tile[r] * b_tile[j];
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let out_row = &mut out.data[(i + r) * n + j0..(i + r) * n + j0 + NR];
                    for (o, &a) in out_row.iter_mut().zip(acc_row) {
                        *o += a;
                    }
                }
                j0 += NR;
            }
            // Remainder columns of this row block: naive per (i, j).
            for r in i..i + MR {
                let a_row = self.row(r);
                for j in j0..n {
                    let b_row = other.row(j);
                    let mut acc = 0.0;
                    for k in 0..kk {
                        acc += a_row[k] * b_row[k];
                    }
                    out.data[r * n + j] += acc;
                }
            }
            i += MR;
        }
        // Remainder rows: naive.
        for i in i..rows {
            let a_row = self.row(i);
            for j in 0..n {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for k in 0..kk {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * n + j] += acc;
            }
        }
    }

    /// Reference (naive i-j-k loop) form of [`Matrix::matmul_t_acc`] — the
    /// bit-equality contract of the tiled kernel is defined against this.
    pub fn matmul_t_acc_naive(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "accumulator shape mismatch"
        );
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * other.rows + j] += acc;
            }
        }
    }

    /// `out += selfᵀ · other` — accumulation form of [`Matrix::t_matmul`].
    ///
    /// The same per-element math as [`Matrix::t_matmul_acc_naive`] — each
    /// `out` element's terms are added in ascending row order with the
    /// same `a == 0` skip, so results are bit-identical — but
    /// [`t_acc_rows`] register-blocks [`T_ACC_RB`] source rows per pass,
    /// loading and storing each `out` element once per block instead of
    /// once per row (the skip on zero activations — ReLU outputs, one-hot
    /// embeddings — also sidesteps `0 · b` edge cases for non-finite `b`).
    pub fn t_matmul_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "accumulator shape mismatch"
        );
        t_acc_rows(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// Reference (naive row-outer loop) form of [`Matrix::t_matmul_acc`] —
    /// the bit-equality contract of the tiled kernel is defined against
    /// this.
    pub fn t_matmul_acc_naive(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "accumulator shape mismatch"
        );
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
    }

    /// `out += (selfᵀ · other) ⊙ mask` — the masked-linear weight gradient.
    /// Each term is gated by the mask entry as it is accumulated; for the
    /// binary masks MADE uses this equals masking the finished product.
    ///
    /// Same structure as [`Matrix::t_matmul_acc`]: per-element math of
    /// [`Matrix::t_matmul_masked_acc_naive`] (ascending-row adds per
    /// element, `a == 0` skip — bit-identical), register-blocked over
    /// [`T_ACC_RB`] source rows by [`t_acc_rows_masked`].
    pub fn t_matmul_masked_acc(&self, other: &Matrix, mask: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "accumulator shape mismatch"
        );
        assert_eq!(mask.shape(), out.shape(), "mask shape mismatch");
        t_acc_rows_masked(
            &self.data,
            &other.data,
            &mask.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// Reference (naive row-outer loop) form of
    /// [`Matrix::t_matmul_masked_acc`] — the bit-equality contract of the
    /// tiled kernel is defined against this.
    pub fn t_matmul_masked_acc_naive(&self, other: &Matrix, mask: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "accumulator shape mismatch"
        );
        assert_eq!(mask.shape(), out.shape(), "mask shape mismatch");
        let n = other.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                let m_row = mask.row(i);
                for j in 0..n {
                    out_row[j] += a * b_row[j] * m_row[j];
                }
            }
        }
    }

    /// `out += column sums of self` (`out` is `1 × cols`) — the bias
    /// gradient, in accumulation form.
    pub fn col_sums_acc(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (1, self.cols), "accumulator shape mismatch");
        for r in 0..self.rows {
            let row = self.row(r);
            for (o, v) in out.data.iter_mut().zip(row) {
                *o += v;
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose — delegates to
    /// [`Matrix::t_matmul_acc`] over a zeroed accumulator, so there is
    /// exactly one implementation of this kernel shape. Accumulating into
    /// `+0.0` is the same add sequence the old allocating loop ran, so the
    /// delegation is bit-preserving.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.t_matmul_acc(other, &mut out);
        out
    }

    /// `self · otherᵀ` without materializing the transpose — delegates to
    /// [`Matrix::matmul_t_acc`] over a zeroed accumulator, so there is
    /// exactly one implementation of this kernel shape. Bit-preserving:
    /// each element is a zero-init ascending-`k` dot product `acc` landing
    /// via `0.0 + acc`, and an accumulation started from `+0.0` can never
    /// produce `-0.0`, so the final add is exact.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_t_acc(other, &mut out);
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Element-wise product (Hadamard), returning a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scales all entries in place.
    pub fn scale_assign(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of each column as a `1 × cols` matrix — delegates to
    /// [`Matrix::col_sums_acc`] over a zeroed accumulator (one
    /// implementation per kernel shape).
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.col_sums_acc(&mut out);
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fills with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes in place to `rows × cols`, keeping the allocation when the
    /// new size fits. Newly exposed elements are zero; retained elements
    /// keep whatever they held (callers overwrite).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Becomes an element-wise copy of `other`, reusing the allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }
}

/// Register-tiled GEMM microkernel over raw row-major slices: MR×NR
/// accumulators live in registers across the whole k loop, so each weight
/// row is streamed once per row-block instead of once per row. For every
/// `(i, j)` the contributions accumulate in ascending `k`, so the result
/// is bit-identical to the naive zero-initialized i-k-j loop (zero
/// activations contribute exact zeros; skipping them is not worth the
/// branch). Free function over plain slices so LLVM gets clean noalias
/// information for the output.
fn gemm_tiled(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, kk: usize, n: usize) {
    gemm_tiled_cols(a, b, out, rows, kk, kk, n, 0, n)
}

/// Column-band generalization of [`gemm_tiled`]: computes only columns
/// `c0..c0 + w` of `a · b` (where `b` is `kk × bn` row-major) into `out`
/// (`rows × w`, row-major), contracting only `k < klim` (`a`'s row stride
/// stays `kk`; callers pass `klim == kk` for the full product). Per
/// `(i, j)` the dot product still accumulates from zero in ascending `k`,
/// so each computed value is bit-identical to the corresponding entry of
/// the full product whenever the skipped `b` rows are zero — the
/// incremental AR sweep relies on this to recompute one degree band per
/// step without touching input rows its mask zeroes out.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled_cols(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: usize,
    kk: usize,
    klim: usize,
    bn: usize,
    c0: usize,
    w: usize,
) {
    const MR: usize = 4;
    const L: usize = lane::WIDTH;
    let mut i = 0;
    while i + MR <= rows {
        // Hierarchical fixed-width column tiles, widths derived from the
        // build-time lane width: two-lane and one-lane tiles first (whole
        // vector registers the autovectorizer cannot miss), then
        // power-of-two sub-lane tails. Narrow outputs (the degree bands of
        // the incremental sweep are ~width/n_attrs columns) keep their
        // accumulators in registers instead of falling into a
        // variable-length remainder loop. Tile width only groups columns —
        // each `(i, j)` is still an independent zero-init ascending-k dot
        // product, so the result does not depend on the tiling (or the
        // lane width). The constant-condition branches below fold away at
        // compile time.
        let mut j0 = 0;
        if L == 1 {
            // Scalar fallback: fixed register tiles still buy ILP.
            while j0 + 32 <= w {
                mul_tile::<32>(a, b, out, i, kk, klim, bn, c0, w, j0);
                j0 += 32;
            }
            while j0 + 8 <= w {
                mul_tile::<8>(a, b, out, i, kk, klim, bn, c0, w, j0);
                j0 += 8;
            }
            while j0 + 4 <= w {
                mul_tile::<4>(a, b, out, i, kk, klim, bn, c0, w, j0);
                j0 += 4;
            }
        } else {
            while j0 + 2 * L <= w {
                mul_tile::<{ 2 * L }>(a, b, out, i, kk, klim, bn, c0, w, j0);
                j0 += 2 * L;
            }
            while j0 + L <= w {
                mul_tile::<L>(a, b, out, i, kk, klim, bn, c0, w, j0);
                j0 += L;
            }
            if L > 8 {
                while j0 + 8 <= w {
                    mul_tile::<8>(a, b, out, i, kk, klim, bn, c0, w, j0);
                    j0 += 8;
                }
            }
            if L > 4 {
                while j0 + 4 <= w {
                    mul_tile::<4>(a, b, out, i, kk, klim, bn, c0, w, j0);
                    j0 += 4;
                }
            }
        }
        while j0 + 2 <= w {
            mul_tile::<2>(a, b, out, i, kk, klim, bn, c0, w, j0);
            j0 += 2;
        }
        while j0 < w {
            mul_tile::<1>(a, b, out, i, kk, klim, bn, c0, w, j0);
            j0 += 1;
        }
        i += MR;
    }
    for i in i..rows {
        let a_row = &a[i * kk..i * kk + klim];
        let out_row = &mut out[i * w..(i + 1) * w];
        out_row.fill(0.0);
        for (k, &av) in a_row.iter().enumerate() {
            let b_row = &b[k * bn + c0..k * bn + c0 + w];
            for j in 0..w {
                out_row[j] += av * b_row[j];
            }
        }
    }
}

/// Fixed block width for the axpy-style kernels: two lanes (so the update
/// Source rows register-blocked per [`t_acc_rows`] pass. The `aᵀ · b`
/// accumulators are out-row load/store bound when updated one source row
/// at a time; folding `T_ACC_RB` rows into one pass amortizes that
/// traffic by 4× without reordering any element's add sequence.
const T_ACC_RB: usize = 4;

/// `out[j] += Σ_t avs[t] * brs[t][j]`, accumulated left-to-right in
/// registers. Per element this is the same ascending-`t` add sequence the
/// one-row-at-a-time naive loop performs through memory, so results are
/// bit-identical; only the intermediate load/store round-trips disappear.
#[inline(always)]
fn axpy_rows<const R: usize>(avs: [f32; R], brs: [&[f32]; R], out: &mut [f32]) {
    let n = out.len();
    // Pin every operand row to the output length so the inner-loop bounds
    // checks hoist and the `j` loop vectorizes cleanly.
    let mut rows: [&[f32]; R] = brs;
    for (t, row) in rows.iter_mut().enumerate() {
        *row = &brs[t][..n];
    }
    for j in 0..n {
        let mut acc = out[j];
        for t in 0..R {
            acc += avs[t] * rows[t][j];
        }
        out[j] = acc;
    }
}

/// Masked form of [`axpy_rows`]: every term is additionally gated by the
/// (out-shaped) mask row, `out[j] += Σ_t avs[t] * brs[t][j] * m[j]`.
#[inline(always)]
fn axpy_rows_masked<const R: usize>(avs: [f32; R], brs: [&[f32]; R], m: &[f32], out: &mut [f32]) {
    let n = out.len();
    let m = &m[..n];
    let mut rows: [&[f32]; R] = brs;
    for (t, row) in rows.iter_mut().enumerate() {
        *row = &brs[t][..n];
    }
    for j in 0..n {
        let mut acc = out[j];
        for t in 0..R {
            acc += avs[t] * rows[t][j] * m[j];
        }
        out[j] = acc;
    }
}

/// Loop nest of [`Matrix::t_matmul_acc`] over raw slices: accumulates
/// `a[r][i] * b[r]` into accumulator row `i`, skipping zero `a` entries.
/// Blocks [`T_ACC_RB`] source rows per pass: for each accumulator row the
/// block's surviving (nonzero) coefficients are collected in ascending
/// `r` order and folded in one register-resident sweep, so each out
/// element sees the exact add sequence of the naive loop while touching
/// memory once per block instead of once per row. A free function over
/// bare slices, kept out of line — inlined into the method, LLVM
/// outer-loop-vectorizes across `i` with gather/scatter (masked by the
/// zero skip), which runs slower than scalar code.
#[inline(never)]
fn t_acc_rows(a: &[f32], b: &[f32], out: &mut [f32], rows: usize, m: usize, n: usize) {
    let mut r0 = 0;
    while r0 < rows {
        let rb = T_ACC_RB.min(rows - r0);
        for i in 0..m {
            let mut avs = [0f32; T_ACC_RB];
            let mut brs: [&[f32]; T_ACC_RB] = [&[]; T_ACC_RB];
            let mut cnt = 0;
            for r in r0..r0 + rb {
                let av = a[r * m + i];
                if av != 0.0 {
                    avs[cnt] = av;
                    brs[cnt] = &b[r * n..(r + 1) * n];
                    cnt += 1;
                }
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            match cnt {
                1 => axpy_rows([avs[0]], [brs[0]], out_row),
                2 => axpy_rows([avs[0], avs[1]], [brs[0], brs[1]], out_row),
                3 => axpy_rows([avs[0], avs[1], avs[2]], [brs[0], brs[1], brs[2]], out_row),
                4 => axpy_rows(avs, brs, out_row),
                _ => {}
            }
        }
        r0 += rb;
    }
}

/// Masked form of [`t_acc_rows`] for [`Matrix::t_matmul_masked_acc`]:
/// every accumulated term is additionally gated by `mask` (same shape as
/// `out`).
#[inline(never)]
fn t_acc_rows_masked(
    a: &[f32],
    b: &[f32],
    mask: &[f32],
    out: &mut [f32],
    rows: usize,
    m: usize,
    n: usize,
) {
    let mut r0 = 0;
    while r0 < rows {
        let rb = T_ACC_RB.min(rows - r0);
        for i in 0..m {
            let mut avs = [0f32; T_ACC_RB];
            let mut brs: [&[f32]; T_ACC_RB] = [&[]; T_ACC_RB];
            let mut cnt = 0;
            for r in r0..r0 + rb {
                let av = a[r * m + i];
                if av != 0.0 {
                    avs[cnt] = av;
                    brs[cnt] = &b[r * n..(r + 1) * n];
                    cnt += 1;
                }
            }
            let m_row = &mask[i * n..(i + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            match cnt {
                1 => axpy_rows_masked([avs[0]], [brs[0]], m_row, out_row),
                2 => axpy_rows_masked([avs[0], avs[1]], [brs[0], brs[1]], m_row, out_row),
                3 => axpy_rows_masked(
                    [avs[0], avs[1], avs[2]],
                    [brs[0], brs[1], brs[2]],
                    m_row,
                    out_row,
                ),
                4 => axpy_rows_masked(avs, brs, m_row, out_row),
                _ => {}
            }
        }
        r0 += rb;
    }
}

/// One `4 × NR` register tile of [`gemm_tiled_cols`]: columns
/// `j0..j0 + NR` (offset by `c0` inside `b`) for rows `i..i + 4`,
/// accumulated from zero in ascending `k` up to `klim` (`a`'s row stride
/// stays `kk`). Monomorphized per tile width so the accumulator array
/// stays in registers.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn mul_tile<const NR: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    kk: usize,
    klim: usize,
    bn: usize,
    c0: usize,
    w: usize,
    j0: usize,
) {
    const MR: usize = 4;
    let mut acc = [[0f32; NR]; MR];
    for k in 0..klim {
        let b_tile = &b[k * bn + c0 + j0..k * bn + c0 + j0 + NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = a[(i + r) * kk + k];
            for (o, &bv) in acc_row.iter_mut().zip(b_tile) {
                *o += av * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        out[(i + r) * w + j0..(i + r) * w + j0 + NR].copy_from_slice(acc_row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(4, 5, -1.0, 1.0, &mut rng);
        // explicit aᵀ
        let mut at = Matrix::zeros(3, 4);
        for i in 0..4 {
            for j in 0..3 {
                at.set(j, i, a.get(i, j));
            }
        }
        let expect = at.matmul(&b);
        let got = a.t_matmul(&b);
        for (x, y) in expect.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::rand_uniform(4, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(5, 3, -1.0, 1.0, &mut rng);
        let mut bt = Matrix::zeros(3, 5);
        for i in 0..5 {
            for j in 0..3 {
                bt.set(j, i, b.get(i, j));
            }
        }
        let expect = a.matmul(&bt);
        let got = a.matmul_t(&b);
        for (x, y) in expect.data().iter().zip(got.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn acc_kernels_match_allocating_forms() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::rand_uniform(5, 3, -1.0, 1.0, &mut rng);
        let b = Matrix::rand_uniform(5, 4, -1.0, 1.0, &mut rng);
        let g = Matrix::rand_uniform(5, 4, -1.0, 1.0, &mut rng);

        let mut acc = Matrix::zeros(3, 4);
        a.t_matmul_acc(&b, &mut acc);
        assert_eq!(acc, a.t_matmul(&b));
        // Accumulates rather than overwrites (per-term, so only
        // approximately equal to product-then-add).
        a.t_matmul_acc(&b, &mut acc);
        let mut twice = a.t_matmul(&b);
        twice.add_assign(&a.t_matmul(&b));
        for (x, y) in acc.data().iter().zip(twice.data()) {
            assert!((x - y).abs() < 1e-5);
        }

        let mut acc = Matrix::zeros(5, 5);
        g.matmul_t_acc(&b, &mut acc);
        assert_eq!(acc, g.matmul_t(&b));

        let mut mask = Matrix::zeros(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                mask.set(r, c, ((r + c) % 2) as f32);
            }
        }
        let mut acc = Matrix::zeros(3, 4);
        a.t_matmul_masked_acc(&b, &mask, &mut acc);
        assert_eq!(acc, a.t_matmul(&b).hadamard(&mask));

        let mut acc = Matrix::zeros(1, 4);
        b.col_sums_acc(&mut acc);
        assert_eq!(acc, b.col_sums());
    }

    /// Random matrix with planted exact zeros and negative zeros, so the
    /// tiled kernels hit the `a == 0` skip and signed-zero accumulation
    /// paths the bit-equality contract has to preserve.
    fn tricky(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let mut m = Matrix::rand_uniform(rows, cols, -1.0, 1.0, rng);
        for i in 0..rows {
            for j in 0..cols {
                match (i * cols + j) % 7 {
                    0 => m.set(i, j, 0.0),
                    3 => m.set(i, j, -0.0),
                    _ => {}
                }
            }
        }
        m
    }

    #[test]
    fn tiled_acc_kernels_are_bit_identical_to_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes straddling the tile sizes: exact multiples, remainders in
        // both dimensions, and degenerate single rows/cols.
        let shapes = [
            (8usize, 8usize, 8usize),
            (9, 5, 11),
            (4, 32, 4),
            (1, 3, 1),
            (13, 1, 17),
            (6, 64, 33),
        ];
        for &(m, k, n) in &shapes {
            // matmul_t_acc: (m × k) · (n × k)ᵀ += (m × n)
            let a = tricky(m, k, &mut rng);
            let b = tricky(n, k, &mut rng);
            let init = tricky(m, n, &mut rng);
            let mut tiled = init.clone();
            let mut naive = init.clone();
            a.matmul_t_acc(&b, &mut tiled);
            a.matmul_t_acc_naive(&b, &mut naive);
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul_t_acc {m}x{k}x{n}");
            }

            // t_matmul_acc: (k × m)ᵀ · (k × n) += (m × n)
            let a = tricky(k, m, &mut rng);
            let b = tricky(k, n, &mut rng);
            let init = tricky(m, n, &mut rng);
            let mut tiled = init.clone();
            let mut naive = init.clone();
            a.t_matmul_acc(&b, &mut tiled);
            a.t_matmul_acc_naive(&b, &mut naive);
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "t_matmul_acc {k}x{m}x{n}");
            }

            // t_matmul_masked_acc: ((k × m)ᵀ · (k × n)) ⊙ mask += (m × n)
            let mask = tricky(m, n, &mut rng);
            let init = tricky(m, n, &mut rng);
            let mut tiled = init.clone();
            let mut naive = init.clone();
            a.t_matmul_masked_acc(&b, &mask, &mut tiled);
            a.t_matmul_masked_acc_naive(&b, &mask, &mut naive);
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "t_matmul_masked_acc {k}x{m}x{n}");
            }
        }
    }

    /// Every residue of the output width modulo the lane width (and the
    /// two-lane tile) — exercises every tail path of the tile ladder on
    /// whatever lane width this build selected.
    fn ragged_widths() -> impl Iterator<Item = usize> {
        (1..=2 * lane::WIDTH.max(8) + 1).chain([64])
    }

    #[test]
    fn wide_forward_kernel_bit_identical_to_naive_on_ragged_widths() {
        let mut rng = StdRng::seed_from_u64(21);
        for m in [1usize, 4, 9] {
            for n in ragged_widths() {
                let k = 7;
                let a = tricky(m, k, &mut rng);
                let b = tricky(k, n, &mut rng);
                let mut tiled = Matrix::zeros(0, 0);
                let mut naive = Matrix::zeros(0, 0);
                a.matmul_into(&b, &mut tiled);
                a.matmul_into_naive(&b, &mut naive);
                assert_eq!(tiled.shape(), naive.shape());
                for (x, y) in tiled.data().iter().zip(naive.data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "matmul {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn wide_band_kernel_bit_identical_to_naive_on_ragged_bands() {
        // Band starts both lane-aligned and not, band widths covering every
        // residue mod the lane width — the shapes the padded sweep and its
        // unpadded escape hatch feed this kernel.
        let mut rng = StdRng::seed_from_u64(22);
        let (m, k, n) = (9usize, 5usize, 2 * lane::WIDTH.max(8) + 40);
        let a = tricky(m, k, &mut rng);
        let b = tricky(k, n, &mut rng);
        for start in [0usize, 3, lane::WIDTH] {
            for w in 1..=2 * lane::WIDTH.max(8) + 1 {
                let band = start..start + w;
                let mut tiled = Matrix::zeros(0, 0);
                let mut naive = Matrix::zeros(0, 0);
                a.matmul_col_band_into(&b, band.clone(), &mut tiled);
                a.matmul_col_band_into_naive(&b, band.clone(), &mut naive);
                for (x, y) in tiled.data().iter().zip(naive.data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "band {band:?} of {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn k_limited_band_kernel_bit_identical_to_full_k_on_zero_tails() {
        // The k-limit contract: when every skipped `other` row is zero over
        // the band, contracting only `k < k_limit` is bit-identical to the
        // full product (skipped terms are exact `a · 0.0 = ±0.0` adds).
        // Zero the tail rows of `b` inside the band and check the limited
        // kernel against the full-k naive oracle at every limit.
        let mut rng = StdRng::seed_from_u64(24);
        let (m, k, n) = (9usize, 11usize, lane::WIDTH.max(8) + 13);
        let a = tricky(m, k, &mut rng);
        for start in [0usize, 3] {
            for w in [1usize, lane::WIDTH, lane::WIDTH + 3] {
                let band = start..start + w;
                for klim in [0usize, 1, 5, k] {
                    let mut b = tricky(k, n, &mut rng);
                    for r in klim..k {
                        for c in band.clone() {
                            b.set(r, c, 0.0);
                        }
                    }
                    let mut limited = Matrix::zeros(0, 0);
                    let mut naive = Matrix::zeros(0, 0);
                    a.matmul_col_band_limited_into(&b, band.clone(), klim, &mut limited);
                    a.matmul_col_band_into_naive(&b, band.clone(), &mut naive);
                    for (x, y) in limited.data().iter().zip(naive.data()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "band {band:?} klim {klim}");
                    }
                }
            }
        }
    }

    #[test]
    fn wide_acc_kernels_bit_identical_to_naive_on_ragged_widths() {
        let mut rng = StdRng::seed_from_u64(23);
        let (m, k) = (7usize, 6usize);
        for n in ragged_widths() {
            // matmul_t_acc: (m × k) · (n × k)ᵀ += (m × n)
            let a = tricky(m, k, &mut rng);
            let b = tricky(n, k, &mut rng);
            let init = tricky(m, n, &mut rng);
            let mut tiled = init.clone();
            let mut naive = init.clone();
            a.matmul_t_acc(&b, &mut tiled);
            a.matmul_t_acc_naive(&b, &mut naive);
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "matmul_t_acc n={n}");
            }

            // t_matmul_acc and its masked form: (k × m)ᵀ · (k × n) += (m × n)
            let a = tricky(k, m, &mut rng);
            let b = tricky(k, n, &mut rng);
            let init = tricky(m, n, &mut rng);
            let mut tiled = init.clone();
            let mut naive = init.clone();
            a.t_matmul_acc(&b, &mut tiled);
            a.t_matmul_acc_naive(&b, &mut naive);
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "t_matmul_acc n={n}");
            }
            let mask = tricky(m, n, &mut rng);
            let mut tiled = init.clone();
            let mut naive = init;
            a.t_matmul_masked_acc(&b, &mask, &mut tiled);
            a.t_matmul_masked_acc_naive(&b, &mask, &mut naive);
            for (x, y) in tiled.data().iter().zip(naive.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "t_matmul_masked_acc n={n}");
            }
        }
    }

    #[test]
    fn col_band_matmul_is_bit_identical_to_full_product() {
        // Every column band of the product — tile-aligned, straddling, and
        // degenerate single columns — must match the full GEMM bit for bit,
        // including planted exact/negative zeros in both operands.
        let mut rng = StdRng::seed_from_u64(13);
        for &(m, k, n) in &[
            (9usize, 5usize, 70usize),
            (4, 32, 33),
            (1, 3, 5),
            (6, 1, 64),
        ] {
            let a = tricky(m, k, &mut rng);
            let b = tricky(k, n, &mut rng);
            let full = a.matmul(&b);
            let bands = [
                0..n,
                0..1.min(n),
                n / 3..(2 * n / 3).max(n / 3 + 1),
                n - 1..n,
            ];
            for band in bands {
                let mut out = Matrix::zeros(0, 0);
                a.matmul_col_band_into(&b, band.clone(), &mut out);
                assert_eq!(out.shape(), (m, band.len()));
                for i in 0..m {
                    for (jj, j) in band.clone().enumerate() {
                        assert_eq!(
                            out.get(i, jj).to_bits(),
                            full.get(i, j).to_bits(),
                            "band {band:?} ({m}x{k}x{n}) diverged at ({i}, {j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_acc_kernels_accumulate_repeatedly() {
        // Repeated accumulation into the same buffer (how the backward
        // pass uses these) must also track the naive sequence bit-for-bit.
        let mut rng = StdRng::seed_from_u64(12);
        let a = tricky(7, 10, &mut rng);
        let b = tricky(5, 10, &mut rng);
        let mut tiled = Matrix::zeros(7, 5);
        let mut naive = Matrix::zeros(7, 5);
        for _ in 0..3 {
            a.matmul_t_acc(&b, &mut tiled);
            a.matmul_t_acc_naive(&b, &mut naive);
        }
        assert_eq!(tiled, naive);

        let a = tricky(10, 7, &mut rng);
        let b = tricky(10, 5, &mut rng);
        let mut tiled = Matrix::zeros(7, 5);
        let mut naive = Matrix::zeros(7, 5);
        for _ in 0..3 {
            a.t_matmul_acc(&b, &mut tiled);
            a.t_matmul_acc_naive(&b, &mut naive);
        }
        assert_eq!(tiled, naive);
    }

    #[test]
    fn col_sums_sums_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.col_sums(), Matrix::from_rows(&[&[9.0, 12.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn glorot_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::glorot(64, 32, &mut rng);
        let bound = (6.0f32 / (64.0 + 32.0)).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn glorot_pins_init_distribution() {
        // Pin the init contract: bound = sqrt(6 / (fan_in + fan_out)), the
        // samples fill that support (not a tighter one), and the mean is
        // near zero. Guards against silent regressions to fan-in-only.
        let (fan_in, fan_out) = (100usize, 50usize);
        let bound = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
        let mut rng = StdRng::seed_from_u64(4);
        let w = Matrix::glorot(fan_in, fan_out, &mut rng);
        let max_abs = w.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_abs <= bound, "sample {max_abs} exceeds bound {bound}");
        assert!(max_abs > 0.95 * bound, "samples do not fill the support");
        let mean: f32 = w.data().iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.05 * bound, "mean {mean} too far from zero");
        // Uniform variance b²/3 within 10%.
        let var: f32 = w.data().iter().map(|v| v * v).sum::<f32>() / w.len() as f32;
        let expect = bound * bound / 3.0;
        assert!(
            (var - expect).abs() < 0.1 * expect,
            "variance {var} vs {expect}"
        );
    }
}
