//! Optimizers operating on a [`ParamStore`].

use crate::params::ParamStore;
use crate::tensor::Matrix;

/// Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer sized for `store`.
    pub fn new(store: &ParamStore, lr: f32) -> Self {
        let mut m = Vec::with_capacity(store.len());
        let mut v = Vec::with_capacity(store.len());
        for id in 0..store.len() {
            let (r, c) = store.value(id).shape();
            m.push(Matrix::zeros(r, c));
            v.push(Matrix::zeros(r, c));
        }
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m,
            v,
        }
    }

    /// Builder-style decoupled weight decay (AdamW).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update using the gradients accumulated in `store`, then
    /// clears them.
    pub fn step(&mut self, store: &mut ParamStore) {
        assert_eq!(store.len(), self.m.len(), "optimizer/store size mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, value, grad) in store.iter_mut() {
            let m = &mut self.m[id];
            let v = &mut self.v[id];
            let lr = self.lr;
            let (b1, b2, eps, wd) = (self.beta1, self.beta2, self.eps, self.weight_decay);
            for i in 0..value.len() {
                let g = grad.data()[i];
                let md = &mut m.data_mut()[i];
                *md = b1 * *md + (1.0 - b1) * g;
                let vd = &mut v.data_mut()[i];
                *vd = b2 * *vd + (1.0 - b2) * g * g;
                let mhat = *md / bc1;
                let vhat = *vd / bc2;
                let w = &mut value.data_mut()[i];
                *w -= lr * (mhat / (vhat.sqrt() + eps) + wd * *w);
            }
        }
        store.zero_grads();
    }
}

/// Plain SGD — kept as a baseline / for tests that need a predictable rule.
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }

    pub fn step(&mut self, store: &mut ParamStore) {
        let lr = self.lr;
        for (_, value, grad) in store.iter_mut() {
            for i in 0..value.len() {
                value.data_mut()[i] -= lr * grad.data()[i];
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = (w - 3)^2; gradient 2(w - 3).
    fn quadratic_descent<F: FnMut(&mut ParamStore)>(mut step: F) -> f32 {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::zeros(1, 1));
        for _ in 0..500 {
            let w = store.value(id).get(0, 0);
            store.accumulate_grad(id, &Matrix::from_rows(&[&[2.0 * (w - 3.0)]]));
            step(&mut store);
        }
        store.value(id).get(0, 0)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        store.register(Matrix::zeros(1, 1));
        let mut adam = Adam::new(&store, 0.05);
        let w = quadratic_descent(|s| adam.step(s));
        assert!((w - 3.0).abs() < 0.05, "adam converged to {w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let w = quadratic_descent(|s| sgd.step(s));
        assert!((w - 3.0).abs() < 1e-3, "sgd converged to {w}");
    }

    #[test]
    fn step_clears_gradients() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::zeros(1, 1));
        let mut adam = Adam::new(&store, 0.01);
        store.accumulate_grad(id, &Matrix::filled(1, 1, 1.0));
        adam.step(&mut store);
        assert_eq!(store.grad(id).get(0, 0), 0.0);
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::filled(1, 1, 5.0));
        let mut adam = Adam::new(&store, 0.1).with_weight_decay(0.1);
        for _ in 0..200 {
            // zero task gradient; only decay acts
            adam.step(&mut store);
        }
        assert!(store.value(id).get(0, 0).abs() < 2.0);
    }
}
