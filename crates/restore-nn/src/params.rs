//! Parameter storage shared by all layers of a model.
//!
//! Layers allocate parameters in a [`ParamStore`] and keep only the returned
//! [`ParamId`]s. During a forward pass the tape copies the current parameter
//! values into leaf nodes; after `backward` the accumulated gradients are
//! flushed back into the store, where the optimizer consumes them.

use crate::tensor::Matrix;

/// Index of a parameter inside a [`ParamStore`].
pub type ParamId = usize;

/// Owns all trainable parameters of a model together with their gradient
/// accumulators.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its id.
    pub fn register(&mut self, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.values.push(value);
        self.grads.push(Matrix::zeros(r, c));
        self.values.len() - 1
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters (for reporting model sizes).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id]
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id]
    }

    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id]
    }

    /// Accumulates `delta` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        self.grads[id].add_assign(delta);
    }

    /// Clears all gradient accumulators (keeping allocations).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm over all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_assign(s);
            }
        }
    }

    /// Iterates over `(id, value, grad)` triples, mutably — used by
    /// optimizers.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Matrix, &Matrix)> {
        self.values
            .iter_mut()
            .zip(self.grads.iter())
            .enumerate()
            .map(|(id, (v, g))| (id, v, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_accumulate() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::filled(2, 2, 1.0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 4);
        store.accumulate_grad(id, &Matrix::filled(2, 2, 0.5));
        store.accumulate_grad(id, &Matrix::filled(2, 2, 0.25));
        assert_eq!(store.grad(id).get(0, 0), 0.75);
        store.zero_grads();
        assert_eq!(store.grad(id).get(1, 1), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[3.0, 4.0]]));
        store.clip_grad_norm(1.0);
        let g = store.grad(id);
        assert!((g.norm() - 1.0).abs() < 1e-6);
        assert!((g.get(0, 0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn clip_grad_norm_leaves_small_grads() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[0.3, 0.4]]));
        store.clip_grad_norm(1.0);
        assert!((store.grad(id).get(0, 1) - 0.4).abs() < 1e-7);
    }
}
