//! Parameter storage shared by all layers of a model.
//!
//! Layers allocate parameters in a [`ParamStore`] and keep only the returned
//! [`ParamId`]s. Values and gradients are split: the store owns the values
//! plus one resident [`GradBuffer`] the optimizer consumes, while the
//! data-parallel training engine hands each microbatch its *own*
//! `GradBuffer` to accumulate into, reducing them back into the store in a
//! fixed order so training stays bit-identical under any worker count.

use crate::tensor::Matrix;

/// Index of a parameter inside a [`ParamStore`].
pub type ParamId = usize;

/// A gradient accumulator shaped like a [`ParamStore`]'s parameters.
///
/// Buffers are cheap to reuse: [`GradBuffer::zero`] keeps every allocation.
/// The training engine holds a pool of them, one in flight per microbatch.
#[derive(Clone, Debug, Default)]
pub struct GradBuffer {
    grads: Vec<Matrix>,
}

impl GradBuffer {
    /// A zeroed buffer matching `store`'s parameter shapes.
    pub fn new(store: &ParamStore) -> Self {
        Self {
            grads: store
                .values
                .iter()
                .map(|v| Matrix::zeros(v.rows(), v.cols()))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.grads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id]
    }

    /// Accumulates `delta` into the gradient of `id`.
    pub fn accumulate(&mut self, id: ParamId, delta: &Matrix) {
        self.grads[id].add_assign(delta);
    }

    /// Mutable access for in-place accumulation kernels.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id]
    }

    /// Element-wise `self += other` over all gradients.
    pub fn add_from(&mut self, other: &GradBuffer) {
        assert_eq!(self.grads.len(), other.grads.len(), "buffer size mismatch");
        for (a, b) in self.grads.iter_mut().zip(&other.grads) {
            a.add_assign(b);
        }
    }

    /// Clears all accumulators, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm over all gradients.
    pub fn norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }
}

/// Owns all trainable parameters of a model together with the resident
/// gradient buffer the optimizer consumes.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    values: Vec<Matrix>,
    grads: GradBuffer,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter and returns its id.
    pub fn register(&mut self, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.values.push(value);
        self.grads.grads.push(Matrix::zeros(r, c));
        self.values.len() - 1
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters (for reporting model sizes).
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id]
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id]
    }

    pub fn grad(&self, id: ParamId) -> &Matrix {
        self.grads.grad(id)
    }

    /// Accumulates `delta` into the resident gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Matrix) {
        self.grads.accumulate(id, delta);
    }

    /// Reduces a detached buffer into the resident gradients. The training
    /// engine calls this once per microbatch, in ascending microbatch
    /// order, which pins the floating-point reduction tree independently of
    /// the worker count.
    pub fn accumulate_from(&mut self, other: &GradBuffer) {
        self.grads.add_from(other);
    }

    /// Detaches the resident gradient buffer (leaving an empty one) — used
    /// by [`Tape::backward`](crate::tape::Tape::backward) to flush into the
    /// store while reading parameter values from it.
    pub fn take_grads(&mut self) -> GradBuffer {
        std::mem::take(&mut self.grads)
    }

    /// Re-attaches a buffer detached with [`ParamStore::take_grads`].
    pub fn put_grads(&mut self, grads: GradBuffer) {
        debug_assert_eq!(grads.len(), self.values.len(), "buffer size mismatch");
        self.grads = grads;
    }

    /// Clears all gradient accumulators (keeping allocations).
    pub fn zero_grads(&mut self) {
        self.grads.zero();
    }

    /// Global L2 norm over all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads.norm()
    }

    /// Scales every gradient so the global norm does not exceed `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads.grads {
                g.scale_assign(s);
            }
        }
    }

    /// Copies every parameter *value* from `other` in place, reusing this
    /// store's allocations (gradients are untouched). This is the
    /// double-buffered early-stopping primitive: training keeps one
    /// best-params buffer alive and refreshes it on improved epochs
    /// instead of cloning the whole store each time.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(self.values.len(), other.values.len(), "store size mismatch");
        for (dst, src) in self.values.iter_mut().zip(&other.values) {
            dst.copy_from(src);
        }
    }

    /// All parameter values in registration order — the authoritative
    /// (unpadded) layout the persistence layer serializes.
    pub fn values(&self) -> &[Matrix] {
        &self.values
    }

    /// Overwrites every parameter value from `blocks`, which must match
    /// this store's registration order and shapes exactly. Used by the
    /// snapshot loader: the model is rebuilt structurally (registering
    /// freshly initialized parameters), then its weights are replaced with
    /// the persisted blocks.
    pub fn import_values(&mut self, blocks: &[Matrix]) -> Result<(), String> {
        if blocks.len() != self.values.len() {
            return Err(format!(
                "parameter count mismatch: store has {}, import has {}",
                self.values.len(),
                blocks.len()
            ));
        }
        for (id, (dst, src)) in self.values.iter().zip(blocks).enumerate() {
            if dst.shape() != src.shape() {
                return Err(format!(
                    "parameter {id} shape mismatch: store {:?}, import {:?}",
                    dst.shape(),
                    src.shape()
                ));
            }
        }
        for (dst, src) in self.values.iter_mut().zip(blocks) {
            dst.copy_from(src);
        }
        Ok(())
    }

    /// Overwrites every parameter value from one contiguous little-endian
    /// f32 byte stream in registration order — the snapshot loader's
    /// single-copy path: weight bytes stream straight from the file
    /// payload into the store without materializing intermediate blocks.
    pub fn import_raw_le(&mut self, bytes: &[u8]) -> Result<(), String> {
        let expected = self.num_scalars() * 4;
        if bytes.len() != expected {
            return Err(format!(
                "weight byte count mismatch: store needs {expected} bytes, import has {}",
                bytes.len()
            ));
        }
        let mut chunks = bytes.chunks_exact(4);
        for dst in &mut self.values {
            for v in dst.data_mut() {
                let chunk = chunks.next().expect("length checked above");
                *v = f32::from_le_bytes(chunk.try_into().unwrap());
            }
        }
        Ok(())
    }

    /// Iterates over `(id, value, grad)` triples, mutably — used by
    /// optimizers.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Matrix, &Matrix)> {
        self.values
            .iter_mut()
            .zip(self.grads.grads.iter())
            .enumerate()
            .map(|(id, (v, g))| (id, v, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_accumulate() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::filled(2, 2, 1.0));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 4);
        store.accumulate_grad(id, &Matrix::filled(2, 2, 0.5));
        store.accumulate_grad(id, &Matrix::filled(2, 2, 0.25));
        assert_eq!(store.grad(id).get(0, 0), 0.75);
        store.zero_grads();
        assert_eq!(store.grad(id).get(1, 1), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[3.0, 4.0]]));
        store.clip_grad_norm(1.0);
        let g = store.grad(id);
        assert!((g.norm() - 1.0).abs() < 1e-6);
        assert!((g.get(0, 0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn clip_grad_norm_leaves_small_grads() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::zeros(1, 2));
        store.accumulate_grad(id, &Matrix::from_rows(&[&[0.3, 0.4]]));
        store.clip_grad_norm(1.0);
        assert!((store.grad(id).get(0, 1) - 0.4).abs() < 1e-7);
    }

    #[test]
    fn detached_buffers_reduce_into_the_store() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::zeros(2, 2));
        let mut a = GradBuffer::new(&store);
        let mut b = GradBuffer::new(&store);
        a.accumulate(id, &Matrix::filled(2, 2, 1.0));
        b.accumulate(id, &Matrix::filled(2, 2, 2.0));
        store.accumulate_from(&a);
        store.accumulate_from(&b);
        assert_eq!(store.grad(id).get(0, 0), 3.0);
        a.zero();
        assert_eq!(a.grad(id).get(1, 1), 0.0);
    }

    #[test]
    fn take_and_put_grads_round_trip() {
        let mut store = ParamStore::new();
        let id = store.register(Matrix::zeros(1, 1));
        let mut g = store.take_grads();
        g.accumulate(id, &Matrix::filled(1, 1, 5.0));
        store.put_grads(g);
        assert_eq!(store.grad(id).get(0, 0), 5.0);
    }
}
