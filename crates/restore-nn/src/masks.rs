//! MADE mask construction (Germain et al., ICML 2015), adapted for
//! attribute-grouped inputs and an always-visible conditioning context.
//!
//! Degrees:
//! * context columns have degree `0` — visible to every hidden unit;
//! * all embedding columns of attribute `i` share degree `i + 1`;
//! * hidden units carry degrees in `[lo, n_attrs - 1]` (cycled
//!   deterministically), where `lo = 0` when a context block exists;
//! * a hidden unit of degree `m` sees inputs with degree `≤ m` and previous
//!   hidden units with degree `≤ m`;
//! * the output block of attribute `i` sees hidden units with degree `≤ i`,
//!   hence only attributes `< i` (plus context) — the autoregressive
//!   property `p(x_i | x_{<i})` holds by construction.
//!
//! All hidden layers share one degree vector so residual (identity) skips
//! between equally sized hidden layers preserve the property.

use std::sync::Arc;

use crate::tensor::Matrix;

/// The set of masks for a MADE network.
#[derive(Clone, Debug)]
pub struct MadeMasks {
    /// Mask for the input → first hidden layer.
    pub input: Arc<Matrix>,
    /// Masks for hidden → hidden layers (one per extra hidden layer).
    pub hidden: Vec<Arc<Matrix>>,
    /// Mask for last hidden → output logits.
    pub output: Arc<Matrix>,
    /// Degrees assigned to hidden units (shared across hidden layers).
    pub hidden_degrees: Vec<usize>,
}

/// Builds MADE masks.
///
/// * `attr_embed_dims[i]` — width of the embedding block of attribute `i`.
/// * `attr_cards[i]` — cardinality (output block width) of attribute `i`.
/// * `ctx_dim` — width of the conditioning context block (0 for plain AR).
/// * `hidden_sizes` — widths of the hidden layers (must be non-empty).
pub fn build_masks(
    attr_embed_dims: &[usize],
    attr_cards: &[usize],
    ctx_dim: usize,
    hidden_sizes: &[usize],
) -> MadeMasks {
    let n = attr_embed_dims.len();
    assert_eq!(n, attr_cards.len(), "embed dims / cards mismatch");
    assert!(n > 0, "MADE needs at least one attribute");
    assert!(
        !hidden_sizes.is_empty(),
        "MADE needs at least one hidden layer"
    );

    // Input degrees: ctx block (degree 0) then one block per attribute.
    let mut input_degrees = Vec::new();
    input_degrees.extend(std::iter::repeat_n(0usize, ctx_dim));
    for (i, &d) in attr_embed_dims.iter().enumerate() {
        input_degrees.extend(std::iter::repeat_n(i + 1, d));
    }

    // Hidden degrees: cycle lo..=n-1. With a context block, degree-0 units
    // exist so that attribute 0's conditional can depend on the context.
    let lo = if ctx_dim > 0 { 0 } else { 1.min(n - 1) };
    let hi = n - 1; // a hidden unit never needs to see the last attribute
    let span = hi - lo + 1;
    let degree_of = |j: usize| lo + j % span;

    let h0 = hidden_sizes[0];
    let hidden_degrees: Vec<usize> = (0..hidden_sizes.iter().copied().max().unwrap())
        .map(degree_of)
        .collect();

    // input -> hidden0: allowed iff d_in <= d_hidden.
    let mut input_mask = Matrix::zeros(input_degrees.len(), h0);
    for (r, &din) in input_degrees.iter().enumerate() {
        for (c, &dh) in hidden_degrees.iter().take(h0).enumerate() {
            if din <= dh {
                input_mask.set(r, c, 1.0);
            }
        }
    }

    // hidden -> hidden: allowed iff d_prev <= d_next.
    let mut hidden_masks = Vec::new();
    for w in hidden_sizes.windows(2) {
        let (prev, next) = (w[0], w[1]);
        let mut m = Matrix::zeros(prev, next);
        for r in 0..prev {
            for c in 0..next {
                if hidden_degrees[r] <= hidden_degrees[c] {
                    m.set(r, c, 1.0);
                }
            }
        }
        hidden_masks.push(Arc::new(m));
    }

    // last hidden -> output block of attr i: allowed iff d_hidden <= i.
    let last_h = *hidden_sizes.last().unwrap();
    let total_out: usize = attr_cards.iter().sum();
    let mut output_mask = Matrix::zeros(last_h, total_out);
    let mut offset = 0;
    for (i, &card) in attr_cards.iter().enumerate() {
        for (r, &dh) in hidden_degrees.iter().take(last_h).enumerate() {
            if dh <= i {
                for c in 0..card {
                    output_mask.set(r, offset + c, 1.0);
                }
            }
        }
        offset += card;
    }

    MadeMasks {
        input: Arc::new(input_mask),
        hidden: hidden_masks,
        output: Arc::new(output_mask),
        hidden_degrees: hidden_degrees[..hidden_sizes.iter().copied().max().unwrap()].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attribute_sees_nothing_without_context() {
        let masks = build_masks(&[2, 2], &[3, 3], 0, &[8]);
        // Output block of attr 0 requires hidden degree <= 0; without context
        // the minimum hidden degree is 1, so the block is fully masked and
        // attr 0's conditional comes from the output bias (its marginal).
        for r in 0..8 {
            for c in 0..3 {
                assert_eq!(masks.output.get(r, c), 0.0);
            }
        }
    }

    #[test]
    fn context_is_visible_to_all_attributes() {
        let ctx = 4;
        let masks = build_masks(&[2], &[3], ctx, &[6]);
        // With one attribute, hidden degrees are all 0 and the context rows
        // of the input mask must be fully connected.
        for r in 0..ctx {
            for c in 0..6 {
                assert_eq!(masks.input.get(r, c), 1.0, "ctx row {r} col {c}");
            }
        }
        // And the single output block sees every hidden unit.
        assert!(masks.output.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn attribute_embeddings_share_degrees() {
        let masks = build_masks(&[3, 2], &[2, 2], 0, &[7]);
        // Rows 0..3 belong to attr 0, rows 3..5 to attr 1; within each block
        // all rows must have identical mask patterns.
        for c in 0..7 {
            assert_eq!(masks.input.get(0, c), masks.input.get(1, c));
            assert_eq!(masks.input.get(1, c), masks.input.get(2, c));
            assert_eq!(masks.input.get(3, c), masks.input.get(4, c));
        }
    }

    #[test]
    fn later_attributes_see_strictly_more() {
        let masks = build_masks(&[1, 1, 1], &[2, 2, 2], 0, &[12]);
        // Count connections feeding each output block; they must be
        // non-decreasing in the attribute index.
        let counts: Vec<usize> = (0..3)
            .map(|i| {
                (0..12)
                    .filter(|&r| masks.output.get(r, i * 2) == 1.0)
                    .count()
            })
            .collect();
        assert!(counts[0] <= counts[1] && counts[1] <= counts[2]);
        assert!(counts[2] > 0);
    }

    #[test]
    fn hidden_mask_is_upper_triangular_in_degrees() {
        let masks = build_masks(&[1, 1, 1, 1], &[2, 2, 2, 2], 0, &[8, 8]);
        assert_eq!(masks.hidden.len(), 1);
        let m = &masks.hidden[0];
        for r in 0..8 {
            for c in 0..8 {
                let allowed = masks.hidden_degrees[r] <= masks.hidden_degrees[c];
                assert_eq!(m.get(r, c) == 1.0, allowed);
            }
        }
    }

    #[test]
    fn single_attribute_degenerates_to_marginal() {
        // One attribute, no context: every path from input to output must be
        // blocked (the model can only learn the marginal through the bias).
        let masks = build_masks(&[2], &[4], 0, &[6]);
        // input mask * output mask composition must be all-zero
        let composed = masks.input.matmul(&masks.output);
        assert!(composed.data().iter().all(|&v| v == 0.0));
    }
}
