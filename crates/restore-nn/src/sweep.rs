//! Band-incremental autoregressive sweep — the engine behind
//! [`Made::sample_range_in`](crate::made::Made::sample_range_in).
//!
//! MADE's connectivity masks assign every hidden unit a degree `m(h)`: the
//! unit reads only inputs of degree `≤ m(h)` (context has degree 0,
//! attribute `a`'s embedding has degree `a + 1`) and the logit block of
//! attribute `a` reads only hidden units of degree `≤ a`. Between
//! autoregressive step `a − 1` and step `a` exactly one token column
//! changed — attribute `a − 1`, degree `a` — so a hidden unit with degree
//! `< a` is bit-for-bit unaffected, and the only units that both changed
//! *and* are needed for attribute `a`'s logits are those with degree
//! exactly `a`. The sweep exploits this: it caches each layer's activation
//! matrix across the attribute loop and recomputes, per step and per
//! layer, only the degree-`a` band, collapsing a `D`-attribute sweep from
//! `D` full trunk forwards to roughly **one** full forward's worth of GEMM
//! work.
//!
//! Bit-identity with the full-recompute path: hidden units are kept in
//! their **original order** inside the cached activation matrices (so
//! every downstream dot product visits `k` in the original ascending
//! order), while each layer's frozen `w ⊙ mask` cache has its *columns*
//! stably sorted by degree so a band is one contiguous column range for
//! the band GEMM ([`Matrix::matmul_col_band_into`], zero-initialized
//! ascending-`k` accumulation — the exact add sequence of the full tiled
//! GEMM). Band results scatter back through the permutation. Every
//! computed value is therefore the same full ascending-`k` dot product the
//! naive path computes, just computed once; units of degree `> a` are
//! masked out of everything evaluated so far and stay at their zeroed
//! placeholder.
//!
//! Lane alignment: every nonzero degree band in the frozen cache is padded
//! to a multiple of [`lane::WIDTH`] with zero-weight, zero-bias columns
//! (the real units' sort permutation is unchanged), so each band GEMM is
//! lane-aligned and runs full-width tiles with no ragged tail. A padding
//! column's dot product lands in the band scratch and is discarded — it
//! never touches a real unit's value, keeping the bit-identity contract
//! intact. The output layer is unaffected: [`ArSweep::output_block`] goes
//! through the session's shared *unpadded* masked-weight cache.

use std::collections::HashMap;
use std::sync::Arc;

use crate::layers::MaskedLinear;
use crate::params::{ParamId, ParamStore};
use crate::tensor::{lane, Matrix};

/// Sentinel in [`BandedLayer::perm`] marking a zero-weight padding column
/// appended to a degree band to round its width up to a lane multiple. A
/// padding column has all-zero weight and zero bias, so it never changes a
/// real unit's dot product; the compute epilogue skips it on scatter-back.
const PAD: usize = usize::MAX;

/// The masked trunk of a MADE network, as the sweep sees it: the input
/// layer followed by the hidden layers, the shared hidden-unit degree
/// vector, and the residual policy. Assembled per call by
/// [`Made`](crate::made::Made) — it only borrows the model.
pub(crate) struct SweepNet<'a> {
    /// Input layer then hidden layers, in trunk order.
    pub layers: Vec<&'a MaskedLinear>,
    /// Shared hidden-unit degrees (length ≥ the widest layer; layer `l`
    /// uses the first `width(l)` entries, exactly as mask construction
    /// does).
    pub degrees: &'a [usize],
    /// Number of model attributes; degrees lie in `0..n_attrs`.
    pub n_attrs: usize,
    /// Identity skips between equal-width hidden layers.
    pub residual: bool,
    /// Prebuilt frozen banded caches shared across sessions, if the model
    /// froze them (snapshot rehydration does). Sessions adopt these via
    /// `Arc` instead of re-deriving their own padded copies.
    pub banded: Option<&'a BandedCache>,
}

/// Frozen per-layer cache: the masked weight with columns stably sorted by
/// hidden-unit degree, so each degree band is a contiguous column range.
#[derive(Debug)]
struct BandedLayer {
    /// `Arc` pointer of the mask this cache was built against (to catch a
    /// weight being reused under a different mask, like the session's
    /// masked-weight cache).
    mask_ptr: usize,
    /// `w ⊙ mask`, columns permuted by `perm`; padding columns are all
    /// zero.
    wm: Matrix,
    /// Bias entries permuted identically; padding entries are zero.
    bias: Vec<f32>,
    /// Sorted position → original unit index, or [`PAD`] for a zero
    /// padding column.
    perm: Vec<usize>,
    /// `starts[d]..starts[d + 1]` is the sorted-column range of the
    /// degree-`d` band; units of degree `≤ d` occupy `0..starts[d + 1]`.
    /// Every nonzero band's width is rounded up to a multiple of
    /// [`lane::WIDTH`] with zero-weight padding columns, so band GEMMs
    /// start aligned and run full lane tiles. Length `n_attrs + 1`.
    starts: Vec<usize>,
    /// `k_hi[d]` is one past the highest input row with a nonzero mask
    /// entry over the degree-`d` band's columns (0 for an empty band).
    /// Rows `≥ k_hi[d]` contribute exact zero weights, so the band GEMM
    /// contracts only `k < k_hi[d]` — for the first masked layer, whose
    /// input degrees ascend with the attribute layout, this skips the
    /// embedding blocks of attributes the band cannot read. Length
    /// `n_attrs`.
    k_hi: Vec<usize>,
}

impl BandedLayer {
    fn build(
        store: &ParamStore,
        w: ParamId,
        b: ParamId,
        mask: &Arc<Matrix>,
        degrees: &[usize],
        n_attrs: usize,
    ) -> Self {
        let (k, width) = mask.shape();
        debug_assert_eq!(degrees.len(), width, "degree vector width mismatch");
        let mut sorted: Vec<usize> = (0..width).collect();
        sorted.sort_by_key(|&j| degrees[j]); // stable: within a band, original order
        let mut counts = vec![0usize; n_attrs];
        for &j in &sorted {
            counts[degrees[j]] += 1;
        }
        // Pad every nonzero band to a lane multiple; empty bands stay
        // zero-width. The sort permutation of the real units is unchanged
        // — padding only shifts where the next band starts.
        const L: usize = lane::WIDTH;
        let mut starts = vec![0usize; n_attrs + 1];
        for d in 0..n_attrs {
            let padded = if counts[d] == 0 {
                0
            } else {
                counts[d].div_ceil(L) * L
            };
            starts[d + 1] = starts[d] + padded;
        }
        let mut perm = vec![PAD; starts[n_attrs]];
        let mut next = 0;
        for d in 0..n_attrs {
            for slot in 0..counts[d] {
                perm[starts[d] + slot] = sorted[next];
                next += 1;
            }
        }
        // One past the highest mask-visible input row per band: the band
        // GEMM skips the all-zero-weight rows above it.
        let mut k_hi = vec![0usize; n_attrs];
        for (j, &d) in degrees.iter().enumerate() {
            for r in (k_hi[d]..k).rev() {
                if mask.get(r, j) != 0.0 {
                    k_hi[d] = k_hi[d].max(r + 1);
                    break;
                }
            }
        }
        let wv = store.value(w);
        let bv = store.value(b);
        debug_assert_eq!(wv.shape(), (k, width), "weight/mask shape mismatch");
        let mut wm = Matrix::zeros(k, starts[n_attrs]);
        let mut bias = vec![0f32; starts[n_attrs]];
        for (js, &orig) in perm.iter().enumerate() {
            if orig == PAD {
                continue;
            }
            for r in 0..k {
                // Same element order as `Matrix::hadamard` (w * mask), so
                // cached values match the session's masked-weight cache.
                wm.set(r, js, wv.get(r, orig) * mask.get(r, orig));
            }
            bias[js] = bv.get(0, orig);
        }
        Self {
            mask_ptr: Arc::as_ptr(mask) as usize,
            wm,
            bias,
            perm,
            starts,
            k_hi,
        }
    }
}

/// Frozen, `Arc`-shareable set of banded trunk caches for one model —
/// built once by [`Made::freeze_banded`](crate::made::Made::freeze_banded)
/// (snapshot rehydration does this right after streaming the weights in)
/// and adopted by every inference session, so sessions skip the
/// per-session degree-sort-and-pad copy of every trunk layer. Weights must
/// be frozen when this is built; a model that keeps training must not
/// freeze.
#[derive(Debug, Default)]
pub struct BandedCache {
    layers: HashMap<ParamId, Arc<BandedLayer>>,
}

impl BandedCache {
    pub(crate) fn build(store: &ParamStore, net: &SweepNet) -> Self {
        let mut layers = HashMap::new();
        for layer in &net.layers {
            let (w, b) = layer.param_ids();
            let width = layer.mask().cols();
            layers.insert(
                w,
                Arc::new(BandedLayer::build(
                    store,
                    w,
                    b,
                    layer.mask(),
                    &net.degrees[..width],
                    net.n_attrs,
                )),
            );
        }
        Self { layers }
    }

    fn get(&self, w: ParamId) -> Option<Arc<BandedLayer>> {
        self.layers.get(&w).cloned()
    }

    /// Number of trunk layers with a frozen banded cache (diagnostics).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

/// Persistent state of one band-incremental sweep executor: frozen
/// degree-sorted weight caches plus the per-layer activation matrices the
/// attribute loop maintains. Lives inside an
/// [`InferenceSession`](crate::infer::InferenceSession), so the
/// completion engine's per-worker warm sessions keep the caches across
/// batches and path steps (parameters are frozen at completion time, like
/// the session's masked-weight cache). Activation matrices are recycled
/// buffers — their *values* are per-sweep, their allocations persist.
#[derive(Default)]
pub struct ArSweep {
    /// Degree-banded caches of the input + hidden layers, by weight id —
    /// adopted from the model's shared [`BandedCache`] when it froze one,
    /// otherwise built on first use.
    banded: HashMap<ParamId, Arc<BandedLayer>>,
    /// Current trunk input: context block + every attribute's embedding
    /// block, refreshed in place as columns are sampled.
    x: Matrix,
    /// One activation matrix per masked layer, full width, **original**
    /// unit order; entries of degree bands not yet computed stay zeroed.
    acts: Vec<Matrix>,
    /// Band pre-activation scratch.
    pre: Matrix,
    /// Logit block of the attribute being evaluated.
    pub(crate) logits: Matrix,
    /// Per-row softmax scratch, reused across rows and attributes.
    pub(crate) dist: Vec<f32>,
    /// Sampled token column scratch, reused across attributes.
    pub(crate) sampled: Vec<u32>,
}

impl ArSweep {
    /// Number of layers with a degree-banded weight cache (diagnostics).
    pub fn banded_layers(&self) -> usize {
        self.banded.len()
    }

    /// Starts a sweep over an `m`-row batch: adopts the model's shared
    /// frozen caches (or builds session-local ones on first use) and
    /// sizes + zeroes the activation matrices (zeroed so the
    /// not-yet-computed bands contribute deterministic masked zeros to
    /// the full-length band dot products).
    pub(crate) fn begin(&mut self, store: &ParamStore, net: &SweepNet, m: usize) {
        for layer in &net.layers {
            let (w, b) = layer.param_ids();
            let width = layer.mask().cols();
            let entry = self.banded.entry(w).or_insert_with(|| {
                net.banded.and_then(|c| c.get(w)).unwrap_or_else(|| {
                    Arc::new(BandedLayer::build(
                        store,
                        w,
                        b,
                        layer.mask(),
                        &net.degrees[..width],
                        net.n_attrs,
                    ))
                })
            });
            debug_assert_eq!(
                entry.mask_ptr,
                Arc::as_ptr(layer.mask()) as usize,
                "weight {w} used with two different masks in one session"
            );
        }
        self.x.resize(m, net.layers[0].mask().rows());
        if self.acts.len() != net.layers.len() {
            self.acts = net.layers.iter().map(|_| Matrix::zeros(0, 0)).collect();
        }
        for (a, layer) in self.acts.iter_mut().zip(&net.layers) {
            a.resize(m, layer.mask().cols());
            a.fill_zero();
        }
    }

    /// Copies a `m × dim` block (the context) into `x` at column `offset`.
    pub(crate) fn set_x_block(&mut self, offset: usize, values: &Matrix) {
        let dim = values.cols();
        for r in 0..values.rows() {
            self.x.row_mut(r)[offset..offset + dim].copy_from_slice(values.row(r));
        }
    }

    /// Gathers embedding rows for a token column into `x` at column
    /// `offset` — the in-place refresh of one attribute's input block.
    pub(crate) fn gather_x_block(&mut self, offset: usize, table: &Matrix, tokens: &[u32]) {
        let dim = table.cols();
        for (r, &t) in tokens.iter().enumerate() {
            let t = t as usize;
            assert!(
                t < table.rows(),
                "gather index {t} out of range {}",
                table.rows()
            );
            self.x.row_mut(r)[offset..offset + dim].copy_from_slice(table.row(t));
        }
    }

    /// Computes the hidden-unit bands with degree in `degrees` for every
    /// layer, in trunk order — layer `l`'s band reads layer `l − 1`'s
    /// activations, whose bands of equal or lower degree are already
    /// current. Each unit's value is the full ascending-`k` dot product
    /// over the previous layer (stale high-degree entries are masked to
    /// zero weight), plus bias, optional residual skip, and ReLU — the
    /// exact op sequence of the full trunk.
    pub(crate) fn compute(&mut self, net: &SweepNet, degrees: std::ops::Range<usize>) {
        let ArSweep {
            banded,
            acts,
            x,
            pre,
            ..
        } = self;
        for (l, layer) in net.layers.iter().enumerate() {
            let (w, _) = layer.param_ids();
            let band = &banded[&w];
            let (j0, j1) = (band.starts[degrees.start], band.starts[degrees.end]);
            if j0 == j1 {
                continue;
            }
            let (prev, act): (&Matrix, &mut Matrix) = if l == 0 {
                (&*x, &mut acts[0])
            } else {
                let (head, tail) = acts.split_at_mut(l);
                (&head[l - 1], &mut tail[0])
            };
            // Highest mask-visible input row across the requested bands:
            // all rows above it carry exact zero weights for every column
            // in `j0..j1`, so the contraction skips them (bit-identical
            // for the finite activations the trunk produces).
            let klim = band.k_hi[degrees.clone()]
                .iter()
                .copied()
                .max()
                .unwrap_or(prev.cols());
            prev.matmul_col_band_limited_into(&band.wm, j0..j1, klim, pre);
            // The trunk applies residual skips only between equally shaped
            // hidden layers; the input layer (l == 0) never has one.
            let residual = l > 0 && net.residual && prev.cols() == act.cols();
            for i in 0..act.rows() {
                let pre_row = pre.row(i);
                let prev_row = prev.row(i);
                let act_row = act.row_mut(i);
                for (jj, js) in (j0..j1).enumerate() {
                    let orig = band.perm[js];
                    if orig == PAD {
                        continue;
                    }
                    let mut v = pre_row[jj] + band.bias[js];
                    if residual {
                        v += prev_row[orig];
                    }
                    act_row[orig] = if v < 0.0 { 0.0 } else { v };
                }
            }
        }
    }

    /// Evaluates output columns `cols` (one attribute's logit block) over
    /// the cached last-hidden activations into `self.logits` — the same
    /// kernel, bias add, and `w ⊙ mask` cache (`masked`, the session's —
    /// shared with the full forward path, never duplicated) as the
    /// session's block-restricted output path.
    pub(crate) fn output_block(
        &mut self,
        masked: &mut HashMap<ParamId, (usize, Matrix)>,
        store: &ParamStore,
        output_layer: &MaskedLinear,
        cols: std::ops::Range<usize>,
    ) {
        let (w, b) = output_layer.param_ids();
        let wm = crate::infer::masked_weight(masked, store, w, output_layer.mask());
        let h = self.acts.last().expect("begin() sized the activations");
        h.matmul_cols_into(wm, cols.clone(), &mut self.logits);
        let bv = store.value(b);
        let b_slice = &bv.row(0)[cols];
        for r in 0..self.logits.rows() {
            for (v, bias) in self.logits.row_mut(r).iter_mut().zip(b_slice) {
                *v += bias;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::masks::build_masks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn banded_layer_sorts_stably_and_bounds_bands() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let masks = build_masks(&[2, 2, 2, 2], &[3, 3, 3, 3], 0, &[10]);
        let degrees = &masks.hidden_degrees;
        let w = store.register(Matrix::rand_uniform(10, 10, -1.0, 1.0, &mut rng));
        let b = store.register(Matrix::rand_uniform(1, 10, -1.0, 1.0, &mut rng));
        // Reuse the hidden→hidden geometry: a square 10×10 mask over the
        // shared degree vector.
        let mask = Arc::new({
            let mut m = Matrix::zeros(10, 10);
            for r in 0..10 {
                for c in 0..10 {
                    if degrees[r] <= degrees[c] {
                        m.set(r, c, 1.0);
                    }
                }
            }
            m
        });
        let band = BandedLayer::build(&store, w, b, &mask, degrees, 4);
        assert_eq!(band.starts[0], 0);
        // Every nonzero band is padded to a lane multiple; empty bands
        // stay zero-width.
        let mut counts = [0usize; 4];
        for &d in degrees.iter().take(10) {
            counts[d] += 1;
        }
        for (d, &cnt) in counts.iter().enumerate() {
            let w = band.starts[d + 1] - band.starts[d];
            let expect = if cnt == 0 {
                0
            } else {
                cnt.div_ceil(lane::WIDTH) * lane::WIDTH
            };
            assert_eq!(w, expect, "band {d} not padded to a lane multiple");
        }
        assert_eq!(*band.starts.last().unwrap(), band.perm.len());
        assert_eq!(band.wm.cols(), band.perm.len());
        // perm is sorted by degree, stable within a band.
        let real: Vec<usize> = band.perm.iter().copied().filter(|&o| o != PAD).collect();
        assert_eq!(real.len(), 10, "all real units present exactly once");
        for win in real.windows(2) {
            let (a, b) = (win[0], win[1]);
            assert!(
                degrees[a] < degrees[b] || (degrees[a] == degrees[b] && a < b),
                "perm not a stable degree sort"
            );
        }
        // Band d holds exactly the units of degree d, front-packed, then
        // padding sentinels.
        for (d, &cnt) in counts.iter().enumerate() {
            for (slot, js) in (band.starts[d]..band.starts[d + 1]).enumerate() {
                let orig = band.perm[js];
                if slot < cnt {
                    assert_eq!(degrees[orig], d);
                } else {
                    assert_eq!(orig, PAD, "padding slot holds a real unit");
                }
            }
        }
        // k_hi[d] is one past the highest input row with a nonzero mask
        // entry in any column of degree d (0 for empty bands) — the rows
        // the k-limited band GEMM is allowed to skip.
        for (d, &got) in band.k_hi.iter().enumerate() {
            let mut expect = 0;
            for r in 0..10 {
                for (c, &deg) in degrees.iter().take(10).enumerate() {
                    if deg == d && mask.get(r, c) != 0.0 {
                        expect = expect.max(r + 1);
                    }
                }
            }
            assert_eq!(got, expect, "k_hi wrong for band {d}");
        }
        // Sorted columns carry the masked weight of their original unit;
        // padding columns are all zero with zero bias.
        for (js, &orig) in band.perm.iter().enumerate() {
            for r in 0..10 {
                let expect = if orig == PAD {
                    0.0
                } else {
                    store.value(w).get(r, orig) * mask.get(r, orig)
                };
                assert_eq!(band.wm.get(r, js).to_bits(), expect.to_bits());
            }
            let expect_b = if orig == PAD {
                0.0
            } else {
                store.value(b).get(0, orig)
            };
            assert_eq!(band.bias[js], expect_b);
        }
    }
}
