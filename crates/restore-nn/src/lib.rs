//! # restore-nn — neural substrate for ReStore
//!
//! The ReStore paper implements its completion models in PyTorch; no deep
//! learning framework is available in this offline environment, so this
//! crate provides the minimal substrate the models need, built from scratch:
//!
//! * [`tensor::Matrix`] — dense row-major `f32` matrices;
//! * [`tape::Tape`] — reverse-mode automatic differentiation (training);
//! * [`infer`] — the gradient-free batched inference engine (completion):
//!   the [`infer::Forward`] trait lets one set of layer definitions drive
//!   both the recorded and the no-grad execution paths;
//! * [`params::ParamStore`] — parameter/gradient storage;
//! * [`layers`] — linear, masked linear, embedding, MLP;
//! * [`masks`] — MADE mask construction with attribute-grouped degrees;
//! * [`made::Made`] — the masked autoregressive network (AR backbone);
//! * [`sweep::ArSweep`] — the band-incremental autoregressive sweep: per
//!   sampled attribute, recompute only the hidden-degree band the masks
//!   say changed, bit-identical to full recompute;
//! * [`deepsets::DeepSets`] — permutation-invariant tree embeddings
//!   (SSAR conditioning);
//! * [`loss`] — per-attribute softmax cross-entropy and KL divergence;
//! * [`optim`] — Adam / SGD;
//! * [`train`] — the data-parallel gradient engine (per-worker arena
//!   tapes, per-microbatch gradient buffers, order-pinned reduction).
//!
//! Everything is deterministic given a seed and sized for laptop-scale
//! tabular models (a few hundred thousand parameters).

pub mod deepsets;
pub mod infer;
pub mod layers;
pub mod loss;
pub mod made;
pub mod masks;
pub mod optim;
pub mod params;
pub mod sweep;
pub mod tape;
pub mod tensor;
pub mod train;

pub use deepsets::{DeepSets, DeepSetsConfig, SetBatch, SetTableSpec, TableSet};
pub use infer::{Forward, InferCtx, InferRef, InferenceSession};
pub use loss::{
    block_cross_entropy, block_cross_entropy_sums, kl_divergence, BlockLayout, BlockLoss,
    BlockLossSums,
};
pub use made::{sample_categorical, AttrSpec, Made, MadeConfig};
pub use optim::{Adam, Sgd};
pub use params::{GradBuffer, ParamId, ParamStore};
pub use sweep::{ArSweep, BandedCache};
pub use tape::{Tape, TapeCtx, VarId};
pub use tensor::{lane, Matrix};
pub use train::TrainEngine;
