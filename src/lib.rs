//! # ReStore
//!
//! A Rust reproduction of *"ReStore — Neural Data Completion for Relational
//! Databases"* (Hilprecht & Binnig, SIGMOD 2021).
//!
//! ReStore synthesizes **missing tuples** for incomplete tables in a
//! relational schema by learning (schema-structured) autoregressive models
//! over the available data, using complete tables as evidence. Aggregate
//! queries executed over the completed database approximate the results on
//! the true, complete database — even when tuples are missing
//! *systematically* and therefore bias the available data.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`nn`] — from-scratch neural substrate (tape autograd, MADE, DeepSets).
//! * [`db`] — in-memory relational engine with SPJA query execution.
//! * [`data`] — dataset generators and biased-removal machinery.
//! * [`core`] — the ReStore system itself (completion models,
//!   incompleteness joins, model selection, confidence intervals).
//! * [`eval`] — metrics and experiment runners reproducing the paper's
//!   evaluation.
//! * [`serve`] — network serving front-end: multi-tenant HTTP server over
//!   a hot-swappable snapshot registry.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```no_run
//! use restore::core::{ReStore, RestoreConfig};
//! use restore::data::housing::{HousingConfig, generate_housing};
//!
//! let db = generate_housing(&HousingConfig::small(), 42);
//! let mut restore = ReStore::new(db, RestoreConfig::default());
//! restore.mark_incomplete("apartment");
//! restore.train(7).unwrap();
//! ```

pub use restore_core as core;
pub use restore_data as data;
pub use restore_db as db;
pub use restore_eval as eval;
pub use restore_nn as nn;
pub use restore_serve as serve;
pub use restore_util as util;
